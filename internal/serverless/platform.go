// Package serverless is the deadline-driven serverless front end of §3.1: a
// platform that accepts training functions (model, hyperparameters,
// termination condition, deadline — never a GPU count), admits them through
// ElasticFlow's admission control, and elastically schedules the admitted
// jobs over a virtual cluster, plus an HTTP/JSON control plane standing in
// for the prototype's gRPC one.
package serverless

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/obs/tracing"
	"github.com/elasticflow/elasticflow/internal/store"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// SubmitRequest is the serverless function a DL developer submits (§3.1).
// Note what is absent: any notion of machines or GPU counts.
type SubmitRequest struct {
	// User identifies the submitting developer; operator policies
	// (quotas, pricing, §4.4) key on it. Optional.
	User string `json:"user,omitempty"`
	// Tenant is the namespace this submission bills against. The front
	// door (internal/frontdoor) keys rate limits, GPU quotas and shard
	// routing on it and the journal carries it end-to-end. Optional on a
	// single-platform deployment.
	Tenant string `json:"tenant,omitempty"`
	// Model is a Table 1 model name.
	Model string `json:"model"`
	// GlobalBatch is the training hyperparameter; the platform derives
	// per-worker local batches from it.
	GlobalBatch int `json:"global_batch"`
	// Iterations is the termination condition (maximum iterations).
	Iterations float64 `json:"iterations"`
	// DeadlineSeconds is the deadline relative to submission. Ignored
	// for best-effort jobs.
	DeadlineSeconds float64 `json:"deadline_seconds"`
	// BestEffort submits the job without a deadline (§4.4).
	BestEffort bool `json:"best_effort,omitempty"`
	// SoftDeadline marks the deadline as soft: the job is always
	// admitted but only SLO jobs get guarantees (§4.4).
	SoftDeadline bool `json:"soft_deadline,omitempty"`
}

// JobStatus is the externally visible job state.
type JobStatus struct {
	ID            string  `json:"id"`
	User          string  `json:"user,omitempty"`
	Tenant        string  `json:"tenant,omitempty"`
	Model         string  `json:"model"`
	GlobalBatch   int     `json:"global_batch"`
	State         string  `json:"state"`
	Class         string  `json:"class"`
	GPUs          int     `json:"gpus"`
	LocalBatch    int     `json:"local_batch,omitempty"`
	DoneIters     float64 `json:"done_iters"`
	TotalIters    float64 `json:"total_iters"`
	SubmitTime    float64 `json:"submit_time"`
	Deadline      float64 `json:"deadline,omitempty"`
	EstimatedDone float64 `json:"estimated_done,omitempty"`
	Completion    float64 `json:"completion,omitempty"`
	Placement     string  `json:"placement,omitempty"`
	// EarliestFeasibleSec is set on dropped submissions: the relative
	// deadline (seconds from submission) admission control could have
	// guaranteed instead — the platform's counter-offer. It is also set
	// alongside DeadlineAtRisk with the re-admission counter-offer.
	EarliestFeasibleSec float64 `json:"earliest_feasible_sec,omitempty"`
	// DeadlineAtRisk marks an admitted SLO job whose deadline can no
	// longer be guaranteed after capacity loss (§4.4): the job keeps
	// running demoted, and EarliestFeasibleSec carries the counter-offer.
	DeadlineAtRisk bool `json:"deadline_at_risk,omitempty"`
}

// ClusterStatus summarizes the virtual cluster.
type ClusterStatus struct {
	TotalGPUs   int     `json:"total_gpus"`
	FreeGPUs    int     `json:"free_gpus"`
	Running     int     `json:"running_jobs"`
	Admitted    int     `json:"admitted_jobs"`
	Completed   int     `json:"completed_jobs"`
	Dropped     int     `json:"dropped_jobs"`
	DownServers int     `json:"down_servers,omitempty"`
	PlatformSec float64 `json:"platform_sec"`
}

// Options configures a Platform.
type Options struct {
	// Topology describes the virtual cluster (default 2 servers × 8).
	Topology topology.Config
	// Scheduler overrides the ElasticFlow configuration.
	Scheduler *core.ElasticFlow
	// Hardware sets the performance model (default DefaultA100).
	Hardware *model.Hardware
	// TimeScale is how many platform-seconds elapse per wall second
	// (default 1). Large values fast-forward demo runs.
	TimeScale float64
	// Clock overrides the time source (tests). It must be monotonic.
	Clock func() time.Time
	// Observer, when non-nil, receives the worker-count snapshot after
	// every rescheduling — the hook the elastic training executor
	// (package executor / package agent) plugs into, closing the loop of
	// Fig. 1. It is invoked with the platform lock held; observers must
	// not call back into the platform.
	Observer func(alloc map[string]int)
	// Obs is the observability sink (event bus + metrics registry) behind
	// GET /metrics and GET /debug/events. Nil creates a fresh one sharing
	// the platform's Clock. When the platform builds its own default
	// scheduler it wires this sink into it for decision tracing; a caller
	// supplying Scheduler wires core.Options.Obs (or WithObs) themselves.
	Obs *obs.Obs
	// Store, when non-nil, makes the control plane durable: every mutation
	// is recorded in the journal (record-then-apply) before it is applied,
	// and Shutdown snapshots the final state. NewPlatform requires the
	// store to be empty; a store with recovered state must go through
	// Recover.
	Store *store.Store
	// SnapshotEvery triggers a snapshot (which truncates the journal)
	// after that many records. 0 disables periodic snapshots; Shutdown
	// still takes a final one.
	SnapshotEvery int
	// JobPrefix is prepended to generated job IDs ("job-0001" →
	// "<prefix>job-0001"). The front door gives each shard a distinct
	// prefix ("s0-", "s1-", …) so job IDs stay globally unique and
	// route back to their shard.
	JobPrefix string
}

// Platform is the running serverless service. All methods are safe for
// concurrent use.
type Platform struct {
	// mu is held across scheduling, journaling and plan-cache calls, so
	// it precedes the scheduler's and the store's locks.
	//
	//eflint:lockorder serverless.Platform.mu core.ElasticFlow.mu
	//eflint:lockorder serverless.Platform.mu store.Store.mu
	mu      sync.Mutex
	ef      *core.ElasticFlow
	cluster *topology.Cluster // placement state mutates under mu. guarded by mu
	est     throughput.Estimator
	prof    *throughput.Profiler
	clock   func() time.Time
	start   time.Time
	scale   float64
	// lastTick is the platform time of the latest advance. journaled;
	// guarded by mu
	lastTick float64

	seq       int                 // job ID counter. journaled; guarded by mu
	prefix    string              // job ID prefix (Options.JobPrefix)
	batches   uint64              // admission batch counter. journaled; guarded by mu
	active    []*job.Job          // admitted, incomplete jobs. journaled; guarded by mu
	all       map[string]*job.Job // every job ever submitted. journaled; guarded by mu
	completed int                 // journaled; guarded by mu
	dropped   int                 // journaled; guarded by mu
	// tenantsSeen records every tenant that ever submitted, so per-tenant
	// usage gauges keep reporting 0 after a tenant's jobs drain instead of
	// going stale at the last non-zero value. journaled (via job tenants);
	// guarded by mu
	tenantsSeen map[string]bool
	observer    func(map[string]int)
	obs         *obs.Obs
	// tr is the span tracer (nil-safe; nil when tracing is disabled).
	tr *tracing.Tracer
	// curLSN is the journal LSN of the mutation record currently being
	// applied — the flight-recorder correlation stamped onto every span the
	// apply emits. The live path sets it at append time, replay sets it
	// from the record being replayed, so the two produce identical spans.
	// Zero on a storeless platform. guarded by mu
	curLSN uint64

	// down marks servers declared failed via NodeDown. journaled; guarded by mu
	down map[int]bool
	// downGPUs is the capacity held by down servers. journaled; guarded by mu
	downGPUs int
	// infeasible maps admitted SLO jobs whose deadline became
	// unguaranteeable after capacity loss to the counter-offer (earliest
	// feasible relative deadline in seconds). journaled; guarded by mu
	infeasible map[string]float64

	// store is the durability journal; nil runs the platform in-memory
	// only (DESIGN.md §11).
	store *store.Store
	// snapEvery is the record count that triggers a snapshot.
	snapEvery int
	// closing rejects mutations once graceful shutdown begins. guarded by mu
	closing bool
	// broken wedges the platform after a journal failure: applying a
	// mutation the journal did not accept would break record-then-apply.
	// guarded by mu
	broken error
	// replaying marks recovery replay: applies re-emit events for
	// verification instead of journaling them. guarded by mu
	replaying bool
	// replayTail is the journal suffix being replayed. guarded by mu
	replayTail []store.Record
	// replayPos is the verification cursor into replayTail. guarded by mu
	replayPos int
	// replayErr records the first replay divergence. guarded by mu
	replayErr error
}

// NewPlatform creates a platform over a fresh virtual cluster. A store
// holding recovered state is rejected — silently ignoring it would void
// every guarantee it records; use Recover instead.
func NewPlatform(opts Options) (*Platform, error) {
	if opts.Store != nil && opts.Store.HasState() {
		return nil, fmt.Errorf("serverless: state directory %s holds recovered state; use Recover", opts.Store.Dir())
	}
	return newPlatform(opts)
}

// newPlatform builds the platform shell shared by NewPlatform and Recover.
func newPlatform(opts Options) (*Platform, error) {
	if opts.Topology.Servers == 0 {
		opts.Topology = topology.Config{Servers: 2, GPUsPerServer: 8}
	}
	cluster, err := topology.New(opts.Topology)
	if err != nil {
		return nil, err
	}
	hw := model.DefaultA100()
	if opts.Hardware != nil {
		hw = *opts.Hardware
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	o := opts.Obs
	if o == nil {
		o = obs.New(obs.Options{Clock: clock})
	}
	if opts.Store != nil {
		// The store was opened before this handle existed (efserver opens
		// it to decide between fresh start and recovery); route its
		// ef_store_* series here so journal metrics are visible wherever
		// the platform's are scraped.
		opts.Store.SetObs(o)
	}
	ef := opts.Scheduler
	if ef == nil {
		ef = core.NewDefault().WithObs(o)
	}
	scale := opts.TimeScale
	if scale <= 0 {
		scale = 1
	}
	est := throughput.NewEstimator(hw)
	return &Platform{
		observer:    opts.Observer,
		obs:         o,
		tr:          o.Tracer(),
		ef:          ef,
		cluster:     cluster,
		est:         est,
		prof:        throughput.NewProfiler(est, opts.Topology.GPUsPerServer, cluster.TotalGPUs()),
		clock:       clock,
		start:       clock(),
		scale:       scale,
		prefix:      opts.JobPrefix,
		all:         make(map[string]*job.Job),
		tenantsSeen: make(map[string]bool),
		down:        make(map[int]bool),
		infeasible:  make(map[string]float64),
		store:       opts.Store,
		snapEvery:   opts.SnapshotEvery,
	}, nil
}

// Now returns the platform clock in seconds.
func (p *Platform) Now() float64 {
	return p.clock().Sub(p.start).Seconds() * p.scale
}

// Obs returns the platform's observability sink (never nil); the HTTP
// handler serves its registry on /metrics and its bus on /debug/events.
func (p *Platform) Obs() *obs.Obs { return p.obs }

// ValidateSubmit runs the stateless checks of a submission — the ones the
// front door can apply before routing, without touching any platform. A nil
// return does not guarantee admission (the profiler may still reject a batch
// the cluster cannot fit); it guarantees the request is well-formed.
func ValidateSubmit(req SubmitRequest) error {
	spec, err := model.ByName(req.Model)
	if err != nil {
		return err
	}
	if !spec.SupportsBatch(req.GlobalBatch) {
		return fmt.Errorf("serverless: model %s does not support global batch %d (Table 1 pool: %v)", req.Model, req.GlobalBatch, spec.BatchSizes)
	}
	if req.Iterations <= 0 {
		return fmt.Errorf("serverless: iterations must be positive")
	}
	if !req.BestEffort && req.DeadlineSeconds <= 0 {
		return fmt.Errorf("serverless: deadline must be positive for SLO jobs")
	}
	return nil
}

// validateSubmitFull is ValidateSubmit plus the platform-specific profiler
// check (feasibility against this cluster's size). Runs lock-free.
func (p *Platform) validateSubmitFull(req SubmitRequest) error {
	if err := ValidateSubmit(req); err != nil {
		return err
	}
	spec, err := model.ByName(req.Model)
	if err != nil {
		return err
	}
	if _, _, err := p.prof.Profile(spec, req.GlobalBatch); err != nil {
		return err
	}
	return nil
}

// Submit profiles, validates and admits a job (§3.1). The returned status
// reports whether the job was admitted or dropped. Invalid requests are
// rejected before they reach the journal; a valid request is journaled
// durably before the admission decision is applied (record-then-apply).
//
//eflint:journal entry
func (p *Platform) Submit(req SubmitRequest) (JobStatus, error) {
	if err := p.validateSubmitFull(req); err != nil {
		return JobStatus{}, err
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMutableLocked(); err != nil {
		return JobStatus{}, err
	}
	p.advanceLocked()
	now := p.lastTick
	if p.journalingLocked() {
		if err := p.journalLocked(recSubmit, now, req, true); err != nil {
			return JobStatus{}, err
		}
	}
	st, err := p.applySubmitLocked(req, now)
	p.maybeSnapshotLocked()
	return st, err
}

// SubmitBatch admits a batch of pre-validated submissions as ONE journaled
// mutation: a single recBatch record carries every request (with its tenant
// tag), a single batch event frames the group in the event trail, and — when
// anything was admitted — a single rescheduling pass folds the plan cache
// once for the whole batch instead of once per arrival. Verdicts come back
// in arrival order. An invalid item fails the whole batch before the journal
// is touched: the front door validates with ValidateSubmit before batching,
// so a rejection here is a caller bug, not a tenant error.
//
//eflint:journal entry
func (p *Platform) SubmitBatch(reqs []SubmitRequest) ([]JobStatus, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	for i := range reqs {
		if err := p.validateSubmitFull(reqs[i]); err != nil {
			return nil, fmt.Errorf("serverless: batch item %d: %w", i, err)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMutableLocked(); err != nil {
		return nil, err
	}
	p.advanceLocked()
	now := p.lastTick
	if p.journalingLocked() {
		if err := p.journalLocked(recBatch, now, batchBody{Batch: p.batches + 1, Reqs: reqs}, true); err != nil {
			return nil, err
		}
	}
	out := p.applySubmitBatchLocked(reqs, now)
	p.maybeSnapshotLocked()
	return out, nil
}

// applySubmitBatchLocked runs the batched admission decision at time now —
// shared by the live path and journal replay. One batch event frames the
// group, one frontdoor.batch span parents every admitted job's lifecycle,
// and at most one rescheduling pass runs for the whole batch.
//
//eflint:journal apply
func (p *Platform) applySubmitBatchLocked(reqs []SubmitRequest, now float64) []JobStatus {
	p.batches++
	batch := p.batches
	p.eventLocked(now, obs.KindBatch, "",
		obs.F("batch", batch), obs.F("size", len(reqs)), obs.F("tenants", tenantList(reqs)))
	ref := p.tr.Begin(now, tracing.SpanFrontdoorBatch, "")
	out := make([]JobStatus, len(reqs))
	jobs := make([]*job.Job, len(reqs))
	admitted := 0
	ba := p.ef.BeginAdmitBatch(now, p.capLocked())
	for i, req := range reqs {
		j, st, err := p.applySubmitItemLocked(req, now, ref, ba)
		if err != nil {
			// Validation passed before journaling, so an apply error is
			// deterministic in (req, state) and replay reaches the same
			// verdict; frame it as an event so trails stay comparable.
			p.eventLocked(now, obs.KindError, "",
				obs.F("op", "batch-submit"), obs.F("err", err.Error()))
			out[i] = JobStatus{Model: req.Model, Tenant: req.Tenant, State: "invalid"}
			continue
		}
		if j != nil {
			jobs[i] = j
			admitted++
			continue
		}
		out[i] = st
	}
	if admitted > 0 {
		p.rescheduleLocked(now)
	}
	for i, j := range jobs {
		if j != nil {
			out[i] = p.statusLocked(j)
		}
	}
	p.tr.EndLSN(now, ref, p.curLSN,
		tracing.A("batch", batch), tracing.A("size", len(reqs)), tracing.A("admitted", admitted))
	return out
}

// tenantList renders the distinct tenants of a batch in first-appearance
// order — the deterministic framing string of the batch event.
func tenantList(reqs []SubmitRequest) string {
	seen := make(map[string]bool, len(reqs))
	names := make([]string, 0, len(reqs))
	for _, r := range reqs {
		t := r.Tenant
		if t == "" {
			t = "-"
		}
		if !seen[t] {
			seen[t] = true
			names = append(names, t)
		}
	}
	return strings.Join(names, ",")
}

// applySubmitLocked runs a single submission decision at time now — the
// shared apply function of the live path and journal replay. Everything it
// does is deterministic in (req, now, platform state).
//
//eflint:journal apply
func (p *Platform) applySubmitLocked(req SubmitRequest, now float64) (JobStatus, error) {
	j, st, err := p.applySubmitItemLocked(req, now, tracing.Ref{}, p.ef.BeginAdmitBatch(now, p.capLocked()))
	if err != nil {
		return JobStatus{}, err
	}
	if j == nil {
		return st, nil
	}
	p.rescheduleLocked(now)
	return p.statusLocked(j), nil
}

// applySubmitItemLocked builds, profiles and admission-checks one submission
// without rescheduling. An admitted job is returned for the caller to
// reschedule and compute its post-schedule status (possibly amortized over a
// whole batch); a dropped submission returns (nil, dropStatus, nil) with the
// counter-offer filled in. The lifecycle root parents under batch when set.
// ba is the batch's admission session: one pass-1 fold and one counter-offer
// search amortize across same-shape arrivals (a single submission passes a
// fresh one-item session, which computes exactly what Admit would).
func (p *Platform) applySubmitItemLocked(req SubmitRequest, now float64, batch tracing.Ref, ba *core.AdmitBatch) (*job.Job, JobStatus, error) {
	spec, err := model.ByName(req.Model)
	if err != nil {
		return nil, JobStatus{}, err
	}
	prof, _, err := p.prof.Profile(spec, req.GlobalBatch)
	if err != nil {
		return nil, JobStatus{}, err
	}
	p.seq++
	j := &job.Job{
		ID:                 fmt.Sprintf("%sjob-%04d", p.prefix, p.seq),
		User:               req.User,
		Tenant:             req.Tenant,
		Model:              spec,
		GlobalBatch:        req.GlobalBatch,
		TotalIters:         req.Iterations,
		SubmitTime:         now,
		Deadline:           now + req.DeadlineSeconds,
		Class:              job.SLO,
		Curve:              prof.Curve,
		MinGPUs:            prof.MinGPUs,
		MaxGPUs:            prof.MaxGPUs,
		RescaleOverheadSec: p.est.RescaleOverhead(spec),
		CheckpointBytes:    spec.GradientBytes(),
		MigrateOverheadSec: p.est.CostModel().MigrateCost(spec.GradientBytes(), topology.LevelCluster),
	}
	switch {
	case req.BestEffort:
		j.Class = job.BestEffort
		j.Deadline = math.Inf(1)
	case req.SoftDeadline:
		j.Class = job.SoftDeadline
	}
	if err := j.Validate(); err != nil {
		return nil, JobStatus{}, err
	}
	p.all[j.ID] = j
	if j.Tenant != "" {
		p.tenantsSeen[j.Tenant] = true
	}
	// Open the lifecycle root before admission so the scheduler's plan
	// span lands under it; a drop closes the tree immediately. Batched
	// arrivals parent under the batch's frontdoor.batch span.
	p.tr.StartJobUnder(now, j.ID, batch)
	stop := p.obs.Timer()
	admitted := ba.Admit(j, p.active)
	p.obs.ObserveDecision("admit", stop())
	if !admitted {
		j.State = job.Dropped
		p.dropped++
		st := p.statusLocked(j)
		if dl, ok := ba.EarliestDeadline(j, p.active); ok {
			st.EarliestFeasibleSec = dl - now
		}
		fields := []obs.Field{
			obs.F("model", j.Model.Name), obs.F("reason", "admission control"),
			obs.F("earliest_feasible_sec", st.EarliestFeasibleSec),
		}
		if j.Tenant != "" {
			fields = append(fields, obs.F("tenant", j.Tenant))
		}
		p.eventLocked(now, obs.KindDrop, j.ID, fields...)
		p.obs.IncAdmission("drop")
		p.tr.EmitLSN(now, tracing.SpanAdmit, j.ID, p.curLSN,
			tracing.A("verdict", "drop"), tracing.A("earliest_feasible_sec", st.EarliestFeasibleSec))
		p.tr.EndJob(now, j.ID, p.curLSN, tracing.A("outcome", "dropped"))
		return nil, st, nil
	}
	j.State = job.Admitted
	p.active = append(p.active, j)
	fields := []obs.Field{obs.F("model", j.Model.Name), obs.F("class", j.Class.String())}
	if j.Tenant != "" {
		fields = append(fields, obs.F("tenant", j.Tenant))
	}
	p.eventLocked(now, obs.KindAdmit, j.ID, fields...)
	p.obs.IncAdmission("admit")
	p.tr.EmitLSN(now, tracing.SpanAdmit, j.ID, p.curLSN,
		tracing.A("verdict", "admit"), tracing.A("model", j.Model.Name), tracing.A("class", j.Class.String()))
	return j, JobStatus{}, nil
}

// TenantUsage returns GPUs currently held per tenant across active jobs.
// It deliberately does not advance the clock: the front door polls it every
// scheduling epoch for quota checks, and quota enforcement is documented as
// epoch-granular, so a slightly stale read is fine and keeps the poll from
// churning advance records.
func (p *Platform) TenantUsage() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int)
	for _, j := range p.active {
		if j.Tenant != "" {
			out[j.Tenant] += j.GPUs
		}
	}
	return out
}

// Get returns one job's status.
func (p *Platform) Get(id string) (JobStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked()
	j, ok := p.all[id]
	if !ok {
		return JobStatus{}, fmt.Errorf("serverless: unknown job %q", id)
	}
	return p.statusLocked(j), nil
}

// List returns all jobs, newest first.
func (p *Platform) List() []JobStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked()
	out := make([]JobStatus, 0, len(p.all))
	for _, j := range p.all {
		out = append(out, p.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Cancel removes a job from the platform. Only a cancel that will actually
// change state (the job is admitted or running) is journaled.
//
//eflint:journal entry
func (p *Platform) Cancel(id string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.checkMutableLocked(); err != nil {
		return err
	}
	p.advanceLocked()
	j, ok := p.all[id]
	if !ok {
		return fmt.Errorf("serverless: unknown job %q", id)
	}
	if j.State != job.Admitted && j.State != job.Running {
		return nil
	}
	now := p.lastTick
	if p.journalingLocked() {
		if err := p.journalLocked(recCancel, now, cancelBody{ID: id}, true); err != nil {
			return err
		}
	}
	if err := p.applyCancelLocked(id, now); err != nil {
		return err
	}
	p.maybeSnapshotLocked()
	return nil
}

// applyCancelLocked removes the job at time now — shared by the live path
// and journal replay. Idempotent on an already-inactive job.
//
//eflint:journal apply
func (p *Platform) applyCancelLocked(id string, now float64) error {
	j, ok := p.all[id]
	if !ok {
		return fmt.Errorf("serverless: unknown job %q", id)
	}
	if j.State != job.Admitted && j.State != job.Running {
		return nil
	}
	p.removeActiveLocked(id)
	if _, owned := p.cluster.Placement(id); owned {
		if err := p.cluster.Release(id); err != nil {
			return err
		}
	}
	j.State = job.Dropped
	delete(p.infeasible, id)
	p.eventLocked(now, obs.KindCancel, id)
	p.tr.EndJob(now, id, p.curLSN, tracing.A("outcome", "cancelled"))
	p.rescheduleLocked(now)
	return nil
}

// Cluster returns the cluster summary.
func (p *Platform) Cluster() ClusterStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked()
	running := 0
	for _, j := range p.active {
		if j.GPUs > 0 {
			running++
		}
	}
	return ClusterStatus{
		TotalGPUs:   p.cluster.TotalGPUs(),
		FreeGPUs:    p.cluster.FreeGPUs(),
		Running:     running,
		Admitted:    len(p.active),
		Completed:   p.completed,
		Dropped:     p.dropped,
		DownServers: len(p.down),
		PlatformSec: p.lastTick,
	}
}

// PlanEntry is one job's planned allocation over future slots — the output
// of Algorithm 2 exposed for observability. Levels[t] is the worker count
// planned for [now + t·SlotSec, now + (t+1)·SlotSec).
type PlanEntry struct {
	JobID     string  `json:"job_id"`
	SlotSec   float64 `json:"slot_sec"`
	Levels    []int   `json:"levels"`
	Satisfied bool    `json:"satisfied"`
	FinishSec float64 `json:"finish_sec"`
}

// Plans returns the scheduler's current allocation plan per active job.
func (p *Platform) Plans() []PlanEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked()
	plans := p.ef.Plans(p.lastTick, p.active, p.capLocked())
	out := make([]PlanEntry, 0, len(plans))
	for id, a := range plans {
		out = append(out, PlanEntry{
			JobID:     id,
			SlotSec:   p.ef.SlotSec(),
			Levels:    a.Levels,
			Satisfied: a.Satisfied,
			FinishSec: p.lastTick + a.FinishTime(p.ef.SlotSec()),
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].JobID < out[k].JobID })
	return out
}

// Tick advances the platform to the current clock reading, completing jobs
// and rescheduling; the server calls it periodically. It is also the
// snapshot driver for read-heavy periods: advance records accumulate even
// without mutations, and the periodic tick gives the store a chance to
// truncate them.
func (p *Platform) Tick() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked()
	p.maybeSnapshotLocked()
}

// advanceLocked accrues progress up to the current clock reading.
func (p *Platform) advanceLocked() {
	p.advanceToLocked(p.Now())
}

// advanceToLocked accrues progress since the last tick up to now, retires
// completed jobs, and reschedules if anything changed. Every advance is
// journaled: lastTick is state — later submit times and deadlines are
// measured against it, so recovery must resume at the last observed tick.
// A completion-bearing advance changes scheduling state and is recorded
// durably before applying; a pure time observation is recorded non-durably
// (its loss on power failure only rewinds idle time nothing was
// acknowledged against).
//
//eflint:journal entry
func (p *Platform) advanceToLocked(now float64) {
	dt := now - p.lastTick
	if dt <= 0 {
		return
	}
	if p.closing || p.broken != nil {
		// After shutdown begins the final snapshot must remain the final
		// state; after a journal failure applying anything would break
		// record-then-apply. Either way, time stops.
		return
	}
	if p.journalingLocked() {
		if err := p.journalLocked(recAdvance, now, nil, p.completionPendingLocked(now)); err != nil {
			return
		}
	}
	changed := false
	for _, j := range p.active {
		j.Advance(p.lastTick, dt)
	}
	kept := p.active[:0]
	for _, j := range p.active {
		if !j.Done() {
			kept = append(kept, j)
			continue
		}
		j.State = job.Completed
		j.CompletionTime = now // conservative: completion observed at tick
		j.GPUs = 0
		if _, owned := p.cluster.Placement(j.ID); owned {
			if err := p.cluster.Release(j.ID); err != nil {
				panic(err)
			}
		}
		p.completed++
		delete(p.infeasible, j.ID)
		met := j.MetDeadline()
		p.eventLocked(now, obs.KindComplete, j.ID, obs.F("met", met))
		p.obs.IncCompletion(met)
		if met {
			p.tr.EmitLSN(now, tracing.SpanComplete, j.ID, p.curLSN,
				tracing.A("iters", j.TotalIters), tracing.A("rescales", j.Rescales))
		} else {
			p.tr.EmitLSN(now, tracing.SpanMiss, j.ID, p.curLSN,
				tracing.A("iters", j.TotalIters), tracing.A("rescales", j.Rescales))
		}
		p.tr.EndJob(now, j.ID, p.curLSN, tracing.A("deadline_met", met))
		if j.HasDeadline() {
			p.obs.ObserveDeadline(now, met, obs.DeadlineBudgetRatio(j.SubmitTime, j.Deadline, now))
		}
		changed = true
	}
	p.active = kept
	p.lastTick = now
	if changed {
		p.rescheduleLocked(now)
	}
}

// rescheduleLocked applies a fresh scheduling decision.
func (p *Platform) rescheduleLocked(now float64) {
	stop := p.obs.Timer()
	dec := p.ef.Schedule(now, p.active, p.capLocked())
	p.obs.ObserveDecision("allocate", stop())
	// Remember where every job sat before this pass: the freeze charge for
	// a moved job depends on the link its checkpoint actually crosses.
	prev := p.cluster.Placements()
	costs := p.est.CostModel()
	cfg := p.cluster.Config()
	// Shrink/release first, then grow (buddy-friendly ordering).
	for _, j := range p.active {
		if ng := dec.Alloc[j.ID]; ng != j.GPUs {
			if _, owned := p.cluster.Placement(j.ID); owned {
				if err := p.cluster.Release(j.ID); err != nil {
					panic(err)
				}
			}
		}
	}
	ordered := append([]*job.Job{}, p.active...)
	sort.Slice(ordered, func(i, k int) bool { return dec.Alloc[ordered[i].ID] > dec.Alloc[ordered[k].ID] })
	defer p.notifyLocked()
	defer p.gaugesLocked()
	for _, j := range ordered {
		ng := dec.Alloc[j.ID]
		if ng == j.GPUs {
			continue
		}
		if ng > 0 {
			blk, migs, err := p.cluster.AllocateWithMigration(j.ID, ng)
			if err != nil {
				panic(err)
			}
			for _, m := range migs {
				p.eventLocked(now, obs.KindMigrate, m.JobID, obs.F("from", m.From), obs.F("to", m.To))
				p.obs.IncMigration()
				p.tr.EmitLSN(now, tracing.SpanMigrate, m.JobID, p.curLSN,
					tracing.A("from", m.From), tracing.A("to", m.To))
				// The bystander's trainer stops, its checkpoint crosses the
				// m.From→m.To link, and it restores — the same shared price
				// the simulator charges.
				if b, ok := p.all[m.JobID]; ok {
					b.FrozenUntil = now + b.MoveCharge(costs, cfg, m.From, m.To)
					b.Rescales++
				}
			}
			started := j.GPUs > 0 || j.DoneIters > 0
			if started {
				// In-place rescales (same block) price at the plain rescale
				// overhead; a placement change adds wire time over the
				// crossed link. A job resuming from preemption has no
				// previous block — its bytes come from wherever it was
				// parked, priced conservatively at the cross-rack tier.
				charge := j.MoveOverheadSec()
				if from, ok := prev[j.ID]; ok {
					charge = j.MoveCharge(costs, cfg, from, blk)
				}
				j.FrozenUntil = now + charge
				j.Rescales++
				p.eventLocked(now, obs.KindRescale, j.ID, obs.F("gpus", ng))
				p.obs.IncRescale()
				p.obs.IncJobRescale(j.ID)
				p.tr.EmitLSN(now, tracing.SpanRescale, j.ID, p.curLSN,
					tracing.A("gpus", ng), tracing.A("was", j.GPUs))
			} else {
				p.tr.EmitLSN(now, tracing.SpanPlace, j.ID, p.curLSN, tracing.A("gpus", ng))
			}
			j.State = job.Running
		} else {
			j.State = job.Admitted
		}
		j.GPUs = ng
	}
}

// gaugesLocked refreshes the utilization gauges after a scheduling pass:
// allocated GPUs and Eq. 8 cluster efficiency (each running job's
// throughput normalized by its single-GPU throughput, summed over the
// cluster).
func (p *Platform) gaugesLocked() {
	used := 0
	eff := 0.0
	byTenant := make(map[string]int, len(p.tenantsSeen))
	for _, j := range p.active {
		if j.GPUs <= 0 {
			continue
		}
		used += j.GPUs
		if j.Tenant != "" {
			byTenant[j.Tenant] += j.GPUs
		}
		t1 := j.Curve.At(1)
		if t1 <= 0 {
			if minW := j.Curve.MinWorkers(); minW > 0 {
				t1 = j.Curve.At(minW) / float64(minW)
			}
		}
		if t1 > 0 {
			eff += j.Throughput(j.GPUs) / t1
		}
	}
	p.obs.SetUsedGPUs(used)
	p.obs.SetClusterEfficiency(eff / float64(p.cluster.TotalGPUs()))
	for t := range p.tenantsSeen {
		p.obs.SetTenantGPUs(t, byTenant[t])
	}
}

// Allocations returns the current worker-count snapshot per active job —
// what the observer hook would deliver, fetchable on demand (e.g. right
// after registering an executor for a freshly admitted job).
func (p *Platform) Allocations() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.advanceLocked()
	alloc := make(map[string]int, len(p.active))
	for _, j := range p.active {
		alloc[j.ID] = j.GPUs
	}
	return alloc
}

// PlacementOf returns the buddy block a running job occupies.
func (p *Platform) PlacementOf(id string) (topology.Block, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cluster.Placement(id)
}

// notifyLocked pushes the current allocation snapshot to the observer.
func (p *Platform) notifyLocked() {
	if p.observer == nil {
		return
	}
	alloc := make(map[string]int, len(p.active))
	for _, j := range p.active {
		alloc[j.ID] = j.GPUs
	}
	p.observer(alloc)
}

func (p *Platform) removeActiveLocked(id string) {
	kept := p.active[:0]
	for _, j := range p.active {
		if j.ID != id {
			kept = append(kept, j)
		}
	}
	p.active = kept
}

func (p *Platform) statusLocked(j *job.Job) JobStatus {
	s := JobStatus{
		ID:          j.ID,
		User:        j.User,
		Tenant:      j.Tenant,
		Model:       j.Model.Name,
		GlobalBatch: j.GlobalBatch,
		State:       j.State.String(),
		Class:       j.Class.String(),
		GPUs:        j.GPUs,
		DoneIters:   j.DoneIters,
		TotalIters:  j.TotalIters,
		SubmitTime:  j.SubmitTime,
	}
	if j.HasDeadline() {
		s.Deadline = j.Deadline
	}
	if j.GPUs > 0 {
		s.LocalBatch = j.GlobalBatch / j.GPUs
		if tput := j.Throughput(j.GPUs); tput > 0 {
			s.EstimatedDone = p.lastTick + j.RemainingIters()/tput
		}
		if b, ok := p.cluster.Placement(j.ID); ok {
			s.Placement = b.String()
		}
	}
	if j.State == job.Completed {
		s.Completion = j.CompletionTime
	}
	if offer, ok := p.infeasible[j.ID]; ok {
		s.DeadlineAtRisk = true
		s.EarliestFeasibleSec = offer
	}
	return s
}
