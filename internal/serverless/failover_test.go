package serverless

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// feasibilityBracket asks the platform's own counter-offer machinery for
// the earliest feasible relative deadline of a reference job on a full
// 16-GPU cluster (e16) and on a single 8-GPU server (e8). A deadline
// between the two is guaranteeable at full capacity but not after losing a
// server — the interesting regime for §4.4 tests.
func feasibilityBracket(t *testing.T) (e16, e8 float64) {
	t.Helper()
	offers := make([]float64, 2)
	for i, servers := range []int{2, 1} {
		clk := &fakeClock{t: time.Unix(0, 0)}
		p, err := NewPlatform(Options{
			Topology: topology.Config{Servers: servers, GPUsPerServer: 8},
			Clock:    clk.now,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 4e6, DeadlineSeconds: 1})
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "dropped" || st.EarliestFeasibleSec <= 0 {
			t.Fatalf("probe on %d servers: %+v", servers, st)
		}
		offers[i] = st.EarliestFeasibleSec
	}
	e16, e8 = offers[0], offers[1]
	if e8 <= e16*1.02 {
		t.Skipf("no feasibility gap between 16 and 8 GPUs (e16=%.0f e8=%.0f)", e16, e8)
	}
	return e16, e8
}

func TestNodeDownEvictsAndShrinksCapacity(t *testing.T) {
	p, _ := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 5e6, DeadlineSeconds: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if st.GPUs < 16 {
		t.Fatalf("lone job got %d GPUs, expected the full cluster", st.GPUs)
	}
	evicted, err := p.NodeDown(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicted) != 1 || evicted[0] != st.ID {
		t.Fatalf("evicted %v, want [%s]", evicted, st.ID)
	}
	got, err := p.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The job is re-placed immediately on the surviving server's 8 GPUs.
	if got.GPUs > 8 {
		t.Fatalf("job holds %d GPUs after half the cluster failed", got.GPUs)
	}
	if got.State == "dropped" {
		t.Fatal("evicted job dropped instead of re-placed")
	}
	cs := p.Cluster()
	if cs.DownServers != 1 {
		t.Fatalf("DownServers=%d want 1", cs.DownServers)
	}
	if ds := p.DownServers(); len(ds) != 1 || ds[0] != 1 {
		t.Fatalf("DownServers() = %v", ds)
	}
	// Idempotent.
	if again, err := p.NodeDown(1); err != nil || again != nil {
		t.Fatalf("second NodeDown: %v %v", again, err)
	}
	// Out of range.
	if _, err := p.NodeDown(5); err == nil {
		t.Fatal("NodeDown(5) on a 2-server cluster succeeded")
	}
}

func TestNodeUpRestoresCapacity(t *testing.T) {
	p, _ := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 5e6, DeadlineSeconds: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NodeDown(0); err != nil {
		t.Fatal(err)
	}
	if err := p.NodeUp(0); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GPUs < 16 {
		t.Fatalf("job holds %d GPUs after full recovery, want 16", got.GPUs)
	}
	if cs := p.Cluster(); cs.DownServers != 0 {
		t.Fatalf("DownServers=%d after NodeUp", cs.DownServers)
	}
	// Idempotent on an up server.
	if err := p.NodeUp(0); err != nil {
		t.Fatal(err)
	}
	if err := p.NodeUp(9); err == nil {
		t.Fatal("NodeUp(9) on a 2-server cluster succeeded")
	}
}

func TestNodeDownMarksInfeasibleDeadlinesAtRisk(t *testing.T) {
	e16, e8 := feasibilityBracket(t)
	p, _ := newTestPlatform(t)
	// A deadline between the 16-GPU and 8-GPU earliest feasible offers:
	// guaranteed now, infeasible once half the cluster fails.
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 4e6, DeadlineSeconds: (e16 + e8) / 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.State == "dropped" {
		t.Fatalf("job not admitted at full capacity: %+v", st)
	}
	if _, err := p.NodeDown(1); err != nil {
		t.Fatal(err)
	}
	got, err := p.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.DeadlineAtRisk {
		t.Fatalf("deadline still guaranteed on half the cluster: %+v", got)
	}
	if got.EarliestFeasibleSec <= 0 {
		t.Fatalf("no counter-offer on at-risk job: %+v", got)
	}
	if got.State == "dropped" {
		t.Fatal("at-risk job was dropped, not demoted")
	}
	found := false
	for _, ev := range p.Obs().Bus.Since(0) {
		if ev.Kind == obs.KindInfeasible && ev.JobID == st.ID {
			if _, ok := ev.Field("earliest_feasible_sec"); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no deadline-infeasible event on the bus")
	}

	// Capacity returns: the guarantee is re-established and the at-risk
	// mark cleared.
	if err := p.NodeUp(1); err != nil {
		t.Fatal(err)
	}
	got, err = p.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.DeadlineAtRisk {
		t.Fatalf("at-risk mark not cleared after recovery: %+v", got)
	}
	cleared := false
	for _, ev := range p.Obs().Bus.Since(0) {
		if ev.Kind == obs.KindInfeasible && ev.JobID == st.ID {
			if v, ok := ev.Field("cleared"); ok && v == "true" {
				cleared = true
			}
		}
	}
	if !cleared {
		t.Fatal("no cleared deadline-infeasible event after recovery")
	}
}

func TestNodeDownBlocksAdmissionOnLostCapacity(t *testing.T) {
	e16, e8 := feasibilityBracket(t)
	deadline := (e16 + e8) / 2
	p, _ := newTestPlatform(t)
	if _, err := p.NodeDown(0); err != nil {
		t.Fatal(err)
	}
	// This deadline needs more than the surviving 8 GPUs can deliver.
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 4e6, DeadlineSeconds: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "dropped" {
		t.Fatalf("admission ignored lost capacity: %+v", st)
	}
	if err := p.NodeUp(0); err != nil {
		t.Fatal(err)
	}
	st, err = p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 4e6, DeadlineSeconds: deadline})
	if err != nil {
		t.Fatal(err)
	}
	if st.State == "dropped" {
		t.Fatalf("admission still shrunken after recovery: %+v", st)
	}
}

func TestNodeDownCompletionClearsAtRisk(t *testing.T) {
	e16, e8 := feasibilityBracket(t)
	p, clk := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 4e6, DeadlineSeconds: (e16 + e8) / 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.NodeDown(1); err != nil {
		t.Fatal(err)
	}
	// Let the demoted job run to completion (late) on the survivors.
	clk.advance(time.Duration(2*e8) * time.Second)
	got, err := p.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "completed" {
		t.Fatalf("state=%s want completed", got.State)
	}
	if got.DeadlineAtRisk {
		t.Fatal("completed job still marked at risk")
	}
}

func TestNodeDownHTTPEndpoints(t *testing.T) {
	p, _ := newTestPlatform(t)
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/cluster/servers/1/down", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("down status %d", resp.StatusCode)
	}
	if cs := p.Cluster(); cs.DownServers != 1 {
		t.Fatalf("DownServers=%d after POST down", cs.DownServers)
	}
	resp, err = http.Post(srv.URL+"/v1/cluster/servers/1/up", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("up status %d", resp.StatusCode)
	}
	if cs := p.Cluster(); cs.DownServers != 0 {
		t.Fatalf("DownServers=%d after POST up", cs.DownServers)
	}
	for _, bad := range []struct {
		method, path string
		wantStatus   int
	}{
		{http.MethodGet, "/v1/cluster/servers/1/down", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/cluster/servers/1/explode", http.StatusNotFound},
		{http.MethodPost, "/v1/cluster/servers/x/down", http.StatusBadRequest},
		{http.MethodPost, "/v1/cluster/servers/99/down", http.StatusBadRequest},
	} {
		req, err := http.NewRequest(bad.method, srv.URL+bad.path, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != bad.wantStatus {
			t.Errorf("%s %s: status %d want %d", bad.method, bad.path, resp.StatusCode, bad.wantStatus)
		}
	}
}
