package serverless

import (
	"encoding/json"
	"fmt"
	"testing"

	"github.com/elasticflow/elasticflow/internal/store"
)

// batchOp is one step of the batched-admission workload: advance the clock
// by Dt seconds, then submit a whole batch (or tick).
type batchOp struct {
	Dt   float64
	Tick bool
	Reqs []SubmitRequest
}

// batchScript mixes multi-tenant batches of every size and class with ticks
// long enough to retire jobs, so replay crosses batch records, completions
// and per-item drops.
func batchScript() []batchOp {
	return []batchOp{
		{Reqs: []SubmitRequest{
			{Tenant: "acme", Model: "resnet50", GlobalBatch: 128, Iterations: 50000, DeadlineSeconds: 4000},
			{Tenant: "acme", Model: "bert", GlobalBatch: 64, Iterations: 20000, DeadlineSeconds: 3000},
			{Tenant: "globex", Model: "gpt2", GlobalBatch: 128, Iterations: 30000, BestEffort: true},
		}},
		{Dt: 10, Reqs: []SubmitRequest{
			// Infeasible deadline: the drop verdict (and counter-offer) must
			// replay identically from inside a batch.
			{Tenant: "globex", Model: "vgg16", GlobalBatch: 64, Iterations: 1e9, DeadlineSeconds: 1},
		}},
		{Dt: 30, Tick: true},
		{Dt: 15, Reqs: []SubmitRequest{
			{Tenant: "initech", Model: "inception3", GlobalBatch: 64, Iterations: 40000, DeadlineSeconds: 2500, SoftDeadline: true},
			{Tenant: "acme", Model: "deepspeech2", GlobalBatch: 64, Iterations: 10000, DeadlineSeconds: 1500},
		}},
		{Dt: 400, Tick: true},
		{Dt: 1200, Tick: true},
		{Dt: 10, Reqs: []SubmitRequest{
			{Tenant: "globex", Model: "resnet50", GlobalBatch: 64, Iterations: 8000, DeadlineSeconds: 2000},
		}},
		{Dt: 900, Tick: true},
	}
}

// applyBatchOp runs one op and renders its outcome as a transcript line.
func applyBatchOp(t *testing.T, p *Platform, clk *stateClock, op batchOp) string {
	t.Helper()
	clk.Advance(op.Dt)
	var out string
	if op.Tick {
		p.Tick()
		out = "tick"
	} else {
		sts, err := p.SubmitBatch(op.Reqs)
		if err != nil {
			out = "batch-err:" + err.Error()
		} else {
			b, _ := json.Marshal(sts)
			out = "batch:" + string(b)
		}
	}
	cl, _ := json.Marshal(p.Cluster())
	usage, _ := json.Marshal(p.TenantUsage())
	return out + " cluster=" + string(cl) + " tenants=" + string(usage)
}

// TestBatchCrashRestartEquality holds batched admissions to the DESIGN.md
// §11 bar at EVERY crash prefix: transcript, final state, bus event trail
// (tenant+batch framing included) and span trail must be byte-identical to
// the uninterrupted run. The platform runs with a shard-style job prefix so
// recovered IDs exercise the front-door naming too.
func TestBatchCrashRestartEquality(t *testing.T) {
	ops := batchScript()
	opts := func(clk *stateClock, st *store.Store) Options {
		return Options{Clock: clk.Now, Store: st, JobPrefix: "s0-"}
	}

	refClk := newStateClock()
	refP, err := NewPlatform(Options{Clock: refClk.Now, JobPrefix: "s0-"})
	if err != nil {
		t.Fatal(err)
	}
	var wantLines []string
	for _, op := range ops {
		wantLines = append(wantLines, applyBatchOp(t, refP, refClk, op))
	}
	wantFinal, wantTrail, wantSpans := finalState(refP), eventTrail(refP), spanTrail(refP.Obs().Tracer())

	for k := 1; k < len(ops); k++ {
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			clk := newStateClock()
			st1, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			p1, err := NewPlatform(opts(clk, st1))
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				if got := applyBatchOp(t, p1, clk, ops[i]); got != wantLines[i] {
					t.Fatalf("pre-crash op %d diverged:\n got %s\nwant %s", i, got, wantLines[i])
				}
			}
			// Crash: abandon without Shutdown.
			st2, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			p2, err := Recover(opts(clk, st2))
			if err != nil {
				t.Fatal(err)
			}
			for i := k; i < len(ops); i++ {
				if got := applyBatchOp(t, p2, clk, ops[i]); got != wantLines[i] {
					t.Fatalf("post-restart op %d diverged:\n got %s\nwant %s", i, got, wantLines[i])
				}
			}
			if got := finalState(p2); got != wantFinal {
				t.Fatalf("final state diverged:\n got %s\nwant %s", got, wantFinal)
			}
			if got := eventTrail(p2); got != wantTrail {
				t.Fatalf("event trail diverged:\n got %s\nwant %s", got, wantTrail)
			}
			if got := spanTrail(p2.Obs().Tracer()); got != wantSpans {
				t.Fatalf("span trail diverged:\n got %s\nwant %s", got, wantSpans)
			}
			if err := p2.Shutdown(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSubmitBatchBasics pins the non-durability-related batch semantics:
// verdict order matches arrival order, job IDs carry the prefix, one batch
// event frames the group, and an invalid item rejects the whole batch
// before any state changes.
func TestSubmitBatchBasics(t *testing.T) {
	clk := newStateClock()
	p, err := NewPlatform(Options{Clock: clk.Now, JobPrefix: "s3-"})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := p.SubmitBatch([]SubmitRequest{
		{Tenant: "a", Model: "resnet50", GlobalBatch: 128, Iterations: 50000, DeadlineSeconds: 4000},
		{Tenant: "b", Model: "vgg16", GlobalBatch: 64, Iterations: 1e9, DeadlineSeconds: 1},
		{Tenant: "a", Model: "gpt2", GlobalBatch: 128, Iterations: 30000, BestEffort: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("got %d verdicts, want 3", len(sts))
	}
	if sts[0].ID != "s3-job-0001" || sts[0].Tenant != "a" {
		t.Fatalf("verdict 0 = %+v, want prefixed ID and tenant a", sts[0])
	}
	if sts[1].State != "dropped" {
		t.Fatalf("infeasible item not dropped: %+v", sts[1])
	}
	if sts[2].State != "admitted" && sts[2].State != "running" {
		t.Fatalf("best-effort item not admitted: %+v", sts[2])
	}

	batches := 0
	for _, ev := range p.Obs().Bus.Since(1) {
		if ev.Kind == "batch" {
			batches++
			if size, _ := ev.Field("size"); size != "3" {
				t.Fatalf("batch event size = %s, want 3", size)
			}
			if tenants, _ := ev.Field("tenants"); tenants != "a,b" {
				t.Fatalf("batch event tenants = %s, want a,b", tenants)
			}
		}
	}
	if batches != 1 {
		t.Fatalf("got %d batch events, want 1", batches)
	}

	if _, err := p.SubmitBatch([]SubmitRequest{
		{Tenant: "a", Model: "resnet50", GlobalBatch: 128, Iterations: 50000, DeadlineSeconds: 4000},
		{Tenant: "a", Model: "no-such-model", GlobalBatch: 64, Iterations: 1, DeadlineSeconds: 1},
	}); err == nil {
		t.Fatal("batch with invalid item did not fail")
	}
	if got := len(p.List()); got != 3 {
		t.Fatalf("rejected batch mutated state: %d jobs, want 3", got)
	}

	usage := p.TenantUsage()
	if usage["a"] == 0 {
		t.Fatalf("tenant a shows no usage: %v", usage)
	}
}
