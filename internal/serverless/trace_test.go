package serverless

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/obs/tracing"
	"github.com/elasticflow/elasticflow/internal/store"
)

// tracedOptions wires a fresh seed-7 tracer into platform options — the
// crash tests hand each incarnation its own tracer so replay must rebuild
// the trail from the journal alone.
func tracedOptions(clk *stateClock, st *store.Store) (Options, *tracing.Tracer) {
	tr := tracing.New(7)
	return Options{
		Clock: clk.Now,
		Store: st,
		Obs:   obs.New(obs.Options{Clock: clk.Now, Tracer: tr}),
	}, tr
}

// spanTrail renders the tracer's full span trail, IDs and LSNs included.
func spanTrail(tr *tracing.Tracer) string {
	b, err := json.Marshal(tr.Spans())
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestCrashRestartSpanEquality extends the crash-restart equality bar to
// the span trail: recovery replays the journal through the same apply
// functions that emitted the original spans, against a fresh same-seed
// tracer, so the rebuilt trail — span IDs, tree shape, times, and WAL LSN
// stamps — must be byte-identical to the uninterrupted run's.
func TestCrashRestartSpanEquality(t *testing.T) {
	ops := crashScript()

	// Reference: uninterrupted journaled run.
	refDir := t.TempDir()
	refClk := newStateClock()
	refStore, err := store.Open(refDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	refOpts, refTr := tracedOptions(refClk, refStore)
	ref, err := NewPlatform(refOpts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		applyOp(t, ref, refClk, op)
	}
	want := spanTrail(refTr)
	if len(refTr.Spans()) == 0 {
		t.Fatal("reference run recorded no spans")
	}

	for _, k := range []int{1, 5, 9, len(ops) - 1} {
		t.Run(fmt.Sprintf("crash-at-%d", k), func(t *testing.T) {
			dir := t.TempDir()
			clk := newStateClock()
			st1, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opts1, _ := tracedOptions(clk, st1)
			p1, err := NewPlatform(opts1)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < k; i++ {
				applyOp(t, p1, clk, ops[i])
			}
			// Crash: abandon p1 and its tracer entirely.

			st2, err := store.Open(dir, store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opts2, tr2 := tracedOptions(clk, st2)
			p2, err := Recover(opts2)
			if err != nil {
				t.Fatal(err)
			}
			for i := k; i < len(ops); i++ {
				applyOp(t, p2, clk, ops[i])
			}
			if got := spanTrail(tr2); got != want {
				t.Errorf("span trail diverged after crash at %d:\n got %s\nwant %s", k, got, want)
			}
			if err := p2.Shutdown(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSpanLSNsMatchJournal is the flight-recorder correlation check: every
// LSN a span carries must name a real mutation record in the write-ahead
// journal, of the kind that span records — an admit span points at the
// submit record, a node-down.recover span at the node-down record.
func TestSpanLSNsMatchJournal(t *testing.T) {
	dir := t.TempDir()
	clk := newStateClock()
	st1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts, tr := tracedOptions(clk, st1)
	p, err := NewPlatform(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range crashScript() {
		applyOp(t, p, clk, op)
	}
	// Abandon without Shutdown so the journal keeps every record (a final
	// snapshot would truncate it), then read it back.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kindAt := make(map[uint64]string)
	for _, rec := range st2.RecoveredTail() {
		kindAt[rec.LSN] = rec.Kind
	}
	if len(kindAt) == 0 {
		t.Fatal("journal is empty")
	}

	// Which journal-record kinds may stand behind each span name.
	wantKinds := map[string]map[string]bool{
		tracing.SpanAdmit:           {recSubmit: true},
		tracing.SpanNodeDownRecover: {recNodeDown: true},
		// Placements, rescales, migrations, and terminal spans are emitted
		// by whichever mutation triggered the replan.
		tracing.SpanPlace:        {recSubmit: true, recCancel: true, recNodeDown: true, recNodeUp: true, recAdvance: true},
		tracing.SpanRescale:      {recSubmit: true, recCancel: true, recNodeDown: true, recNodeUp: true, recAdvance: true},
		tracing.SpanMigrate:      {recSubmit: true, recCancel: true, recNodeDown: true, recNodeUp: true, recAdvance: true},
		tracing.SpanComplete:     {recAdvance: true, recSubmit: true, recCancel: true, recNodeDown: true, recNodeUp: true},
		tracing.SpanMiss:         {recAdvance: true, recSubmit: true, recCancel: true, recNodeDown: true, recNodeUp: true},
		tracing.SpanJobLifecycle: {recSubmit: true, recCancel: true, recAdvance: true, recNodeDown: true, recNodeUp: true},
	}
	stamped := 0
	for _, s := range tr.Spans() {
		if s.LSN == 0 {
			continue
		}
		stamped++
		kind, ok := kindAt[s.LSN]
		if !ok {
			t.Errorf("span %s/%s stamped with LSN %d not present in the journal", s.JobID, s.Name, s.LSN)
			continue
		}
		if allowed := wantKinds[s.Name]; allowed != nil && !allowed[kind] {
			t.Errorf("span %s/%s points at a %q record (LSN %d)", s.JobID, s.Name, kind, s.LSN)
		}
	}
	if stamped == 0 {
		t.Fatal("no span carries a journal LSN")
	}
}

// TestDebugTraceEndpoint: GET /debug/trace serves the span trail as Chrome
// trace-event JSON, ?job= filters to one tree, and a tracerless platform
// reports 404.
func TestDebugTraceEndpoint(t *testing.T) {
	clk := newStateClock()
	opts, _ := tracedOptions(clk, nil)
	p, err := NewPlatform(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	st := submitOne(t, p)
	submitOne(t, p)

	resp, err := http.Get(srv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var all struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Args struct {
				Job string `json:"job,omitempty"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&all); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(all.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	sawLifecycle := false
	for _, ev := range all.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event phase %q, want X", ev.Ph)
		}
		if ev.Name == tracing.SpanJobLifecycle {
			sawLifecycle = true
		}
	}
	if !sawLifecycle {
		t.Error("no job.lifecycle events in the trace")
	}

	var one struct {
		TraceEvents []struct {
			Args struct {
				Job string `json:"job"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	getJSON(t, srv.URL+"/debug/trace?job="+st.ID, &one)
	if len(one.TraceEvents) == 0 {
		t.Fatal("job filter returned nothing")
	}
	for _, ev := range one.TraceEvents {
		if ev.Args.Job != st.ID {
			t.Errorf("filtered trace leaked job %q", ev.Args.Job)
		}
	}

	// No tracer → 404.
	bare, _ := newTestPlatform(t)
	bareSrv := httptest.NewServer(Handler(bare))
	defer bareSrv.Close()
	resp, err = http.Get(bareSrv.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("tracerless /debug/trace status = %d, want 404", resp.StatusCode)
	}
}

// TestDebugEventsPaging: limit= truncates the page and hands back a cursor
// that resumes exactly where the page stopped.
func TestDebugEventsPaging(t *testing.T) {
	p, _ := newTestPlatform(t)
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		submitOne(t, p)
	}
	var full EventsPage
	getJSON(t, srv.URL+"/debug/events", &full)
	if len(full.Events) < 4 {
		t.Fatalf("want at least 4 events, got %d", len(full.Events))
	}

	// Walk the log two events at a time; the pages must concatenate to the
	// full log.
	var walked []obs.Event
	cursor := uint64(0)
	for i := 0; i < 100; i++ {
		var page EventsPage
		getJSON(t, fmt.Sprintf("%s/debug/events?since=%d&limit=2", srv.URL, cursor), &page)
		if len(page.Events) == 0 {
			break
		}
		if len(page.Events) > 2 {
			t.Fatalf("limit=2 returned %d events", len(page.Events))
		}
		walked = append(walked, page.Events...)
		if page.Next != page.Events[len(page.Events)-1].Seq {
			t.Fatalf("page cursor %d != last returned seq %d", page.Next, page.Events[len(page.Events)-1].Seq)
		}
		cursor = page.Next
	}
	if len(walked) != len(full.Events) {
		t.Fatalf("paged walk saw %d events, full log has %d", len(walked), len(full.Events))
	}
	for i := range walked {
		if walked[i].Seq != full.Events[i].Seq {
			t.Errorf("page order diverged at %d: seq %d vs %d", i, walked[i].Seq, full.Events[i].Seq)
		}
	}

	// Bad limits are client errors.
	for _, q := range []string{"limit=0", "limit=-1", "limit=banana"} {
		resp, err := http.Get(srv.URL + "/debug/events?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s status = %d, want 400", q, resp.StatusCode)
		}
	}
}
