package serverless

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/policy"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// fakeClock lets tests advance platform time deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestPlatform(t *testing.T) (*Platform, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(0, 0)}
	p, err := NewPlatform(Options{
		Topology: topology.Config{Servers: 2, GPUsPerServer: 8},
		Clock:    clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, clk
}

func TestSubmitValidation(t *testing.T) {
	p, _ := newTestPlatform(t)
	cases := []SubmitRequest{
		{Model: "nope", GlobalBatch: 64, Iterations: 100, DeadlineSeconds: 3600},
		{Model: "resnet50", GlobalBatch: 99, Iterations: 100, DeadlineSeconds: 3600},
		{Model: "resnet50", GlobalBatch: 64, Iterations: 0, DeadlineSeconds: 3600},
		{Model: "resnet50", GlobalBatch: 64, Iterations: 100, DeadlineSeconds: 0},
	}
	for i, req := range cases {
		if _, err := p.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

func TestSubmitAdmitAndRun(t *testing.T) {
	p, clk := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 128, Iterations: 10000, DeadlineSeconds: 7200})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" && st.State != "admitted" {
		t.Fatalf("state=%s want running/admitted", st.State)
	}
	if st.GPUs == 0 {
		t.Error("admitted job got no GPUs on an idle cluster")
	}
	if st.LocalBatch*st.GPUs != 128 {
		t.Errorf("local batch %d × %d GPUs ≠ global batch 128", st.LocalBatch, st.GPUs)
	}
	if st.Placement == "" {
		t.Error("running job has no placement")
	}
	// Advance past the predicted completion.
	clk.advance(2 * time.Hour)
	got, err := p.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != "completed" {
		t.Errorf("state=%s want completed after 2h", got.State)
	}
	cs := p.Cluster()
	if cs.FreeGPUs != cs.TotalGPUs {
		t.Errorf("GPUs not released after completion: %d free of %d", cs.FreeGPUs, cs.TotalGPUs)
	}
}

func TestSubmitImpossibleDeadlineDropped(t *testing.T) {
	p, _ := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "gpt2", GlobalBatch: 256, Iterations: 1e9, DeadlineSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "dropped" {
		t.Errorf("state=%s want dropped (deadline unsatisfiable)", st.State)
	}
}

func TestBestEffortAdmitted(t *testing.T) {
	p, _ := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "bert", GlobalBatch: 64, Iterations: 1e7, BestEffort: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Class != "best-effort" || st.State == "dropped" {
		t.Errorf("best-effort submission: class=%s state=%s", st.Class, st.State)
	}
	if st.Deadline != 0 {
		t.Errorf("best-effort job has deadline %v", st.Deadline)
	}
}

func TestCancelFreesGPUs(t *testing.T) {
	p, _ := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 128, Iterations: 1e8, DeadlineSeconds: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	cs := p.Cluster()
	if cs.FreeGPUs != cs.TotalGPUs {
		t.Errorf("cancel did not free GPUs: %d/%d", cs.FreeGPUs, cs.TotalGPUs)
	}
	if err := p.Cancel("nonexistent"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}

func TestElasticDownscaleOnContention(t *testing.T) {
	p, clk := newTestPlatform(t)
	first, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 256, Iterations: 5e6, DeadlineSeconds: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if first.GPUs < 8 {
		t.Fatalf("lone job got %d GPUs, expected generous expansion", first.GPUs)
	}
	clk.advance(time.Minute)
	// A tight-deadline job arrives; the first job must shrink.
	second, err := p.Submit(SubmitRequest{Model: "vgg16", GlobalBatch: 256, Iterations: 50000, DeadlineSeconds: 1800})
	if err != nil {
		t.Fatal(err)
	}
	if second.State == "dropped" {
		t.Skip("second job not admissible in this configuration")
	}
	got, err := p.Get(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GPUs+second.GPUs > 16 {
		t.Errorf("overcommitted: %d + %d > 16", got.GPUs, second.GPUs)
	}
}

func TestHTTPEndToEnd(t *testing.T) {
	p, clk := newTestPlatform(t)
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	// Submit.
	body, _ := json.Marshal(SubmitRequest{Model: "resnet50", GlobalBatch: 64, Iterations: 5000, DeadlineSeconds: 3600})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status=%d want 201", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Status.
	clk.advance(30 * time.Second)
	resp, err = http.Get(srv.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.DoneIters <= 0 {
		t.Error("no progress after 30s")
	}

	// List.
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 {
		t.Fatalf("list has %d jobs want 1", len(list))
	}

	// Cluster.
	resp, err = http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	var cs ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cs.TotalGPUs != 16 {
		t.Errorf("total GPUs=%d want 16", cs.TotalGPUs)
	}

	// Cancel.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/jobs/"+st.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("cancel status=%d want 204", resp.StatusCode)
	}
}

func TestHTTPErrors(t *testing.T) {
	p, _ := newTestPlatform(t)
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()

	// Bad JSON.
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status=%d want 400", resp.StatusCode)
	}

	// Unknown job.
	resp, err = http.Get(srv.URL + "/v1/jobs/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status=%d want 404", resp.StatusCode)
	}

	// Dropped submission returns 409.
	body, _ := json.Marshal(SubmitRequest{Model: "gpt2", GlobalBatch: 256, Iterations: 1e9, DeadlineSeconds: 30})
	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("dropped submission status=%d want 409", resp.StatusCode)
	}

	// Method not allowed.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/cluster", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT status=%d want 405", resp.StatusCode)
	}
}

func TestQuotaPolicyEndToEnd(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	quota := policy.NewUserQuota(1, 86400)
	p, err := NewPlatform(Options{
		Topology:  topology.Config{Servers: 2, GPUsPerServer: 8},
		Clock:     clk.now,
		Scheduler: core.New(core.Options{PowerOfTwo: true, Quota: policy.Chain(quota)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	req := SubmitRequest{User: "zoe", Model: "resnet50", GlobalBatch: 128, Iterations: 50000, DeadlineSeconds: 7200}
	st, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == "dropped" {
		t.Fatalf("first submission dropped: %+v", st)
	}
	if st.User != "zoe" {
		t.Errorf("status user=%q", st.User)
	}
	st2, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != "dropped" {
		t.Errorf("quota-violating submission state=%s want dropped", st2.State)
	}
}

func TestPlansEndpoint(t *testing.T) {
	p, _ := newTestPlatform(t)
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 128, Iterations: 1e6, DeadlineSeconds: 86400})
	if err != nil {
		t.Fatal(err)
	}
	plans := p.Plans()
	if len(plans) != 1 {
		t.Fatalf("got %d plans want 1", len(plans))
	}
	pe := plans[0]
	if pe.JobID != st.ID || pe.SlotSec <= 0 {
		t.Errorf("plan entry %+v", pe)
	}
	if len(pe.Levels) == 0 || pe.Levels[0] != st.GPUs {
		t.Errorf("plan slot 0 = %v, job runs %d GPUs", pe.Levels, st.GPUs)
	}
	// Over HTTP.
	srv := httptest.NewServer(Handler(p))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []PlanEntry
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].JobID != st.ID {
		t.Errorf("HTTP plan = %+v", got)
	}
}

func TestObserverReceivesAllocations(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var snapshots []map[string]int
	p, err := NewPlatform(Options{
		Topology: topology.Config{Servers: 2, GPUsPerServer: 8},
		Clock:    clk.now,
		Observer: func(alloc map[string]int) {
			cp := make(map[string]int, len(alloc))
			for k, v := range alloc {
				cp[k] = v
			}
			snapshots = append(snapshots, cp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Submit(SubmitRequest{Model: "resnet50", GlobalBatch: 128, Iterations: 50000, DeadlineSeconds: 7200})
	if err != nil {
		t.Fatal(err)
	}
	if len(snapshots) == 0 {
		t.Fatal("observer never invoked")
	}
	last := snapshots[len(snapshots)-1]
	if last[st.ID] != st.GPUs {
		t.Errorf("observer saw %v, status says %d GPUs", last, st.GPUs)
	}
}

func TestDroppedSubmissionCounterOffer(t *testing.T) {
	p, _ := newTestPlatform(t)
	// Impossibly tight deadline, but finite work: the platform should
	// counter-offer the earliest deadline it can guarantee.
	st, err := p.Submit(SubmitRequest{Model: "bert", GlobalBatch: 128, Iterations: 1e6, DeadlineSeconds: 60})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "dropped" {
		t.Fatalf("state=%s want dropped", st.State)
	}
	if st.EarliestFeasibleSec <= 60 {
		t.Errorf("counter-offer %.0f should exceed the rejected 60s deadline", st.EarliestFeasibleSec)
	}
	// Resubmitting with the counter-offer must be admitted.
	st2, err := p.Submit(SubmitRequest{Model: "bert", GlobalBatch: 128, Iterations: 1e6, DeadlineSeconds: st.EarliestFeasibleSec + 1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.State == "dropped" {
		t.Errorf("counter-offered deadline %.0f rejected on resubmission", st.EarliestFeasibleSec)
	}
}
