package baselines

import (
	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/sched"
)

// EDFAdmission is the §6.4 ablation "EDF + Admission Control": ElasticFlow's
// Algorithm 1 decides admission, but scheduling remains plain EDF scaling.
type EDFAdmission struct {
	// AC performs the admission check; a default ElasticFlow instance is
	// used when nil.
	AC *core.ElasticFlow
	EDF
}

// Name implements sched.Scheduler.
func (e EDFAdmission) Name() string { return "edf+ac" }

// Admit implements sched.Scheduler via Algorithm 1.
func (e EDFAdmission) Admit(now float64, cand *job.Job, active []*job.Job, g int) bool {
	ac := e.AC
	if ac == nil {
		ac = core.NewDefault()
	}
	return ac.Admit(now, cand, active, g)
}

// EDFElastic is the §6.4 ablation "EDF + Elastic Scaling": ElasticFlow's
// elastic resource allocation (Algorithm 2) runs at every event, but every
// job is admitted — deadlines are not guaranteed.
type EDFElastic struct {
	// EF performs the allocation; a default ElasticFlow instance is used
	// when nil.
	EF *core.ElasticFlow
}

// Name implements sched.Scheduler.
func (e EDFElastic) Name() string { return "edf+es" }

// Admit implements sched.Scheduler: everything is admitted.
func (EDFElastic) Admit(float64, *job.Job, []*job.Job, int) bool { return true }

// Schedule implements sched.Scheduler via Algorithm 2.
func (e EDFElastic) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	ef := e.EF
	if ef == nil {
		ef = core.NewDefault()
	}
	return ef.Schedule(now, active, g)
}
