// Package baselines implements the six scheduling policies ElasticFlow is
// compared against in §6.1 — EDF, Gandiva, Tiresias, Themis, Chronus and
// Pollux — plus the two ablation variants of §6.4 (EDF + admission control
// and EDF + elastic scaling). Each policy is re-implemented at the job-level
// granularity the paper's simulator uses, preserving its scheduling rule:
//
//   - EDF: earliest deadline first, each job scaled to its throughput peak.
//   - Gandiva: FIFO packing of the trace-requested counts; no elasticity,
//     no deadline awareness.
//   - Tiresias: two-queue least-attained-service with preemption.
//   - Themis: finish-time fairness (worst ρ first).
//   - Chronus: deadline-aware admission and EDF ordering with the fixed
//     trace-requested counts; no elasticity.
//   - Pollux: elastic goodput maximization; no deadline awareness.
package baselines

import (
	"sort"

	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/sched"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// requested returns the power-of-two worker count a non-elastic policy uses
// for j: the traced request clamped to the job's feasible range.
func requested(j *job.Job) int {
	g := j.RequestedGPUs
	if g < j.MinGPUs {
		g = j.MinGPUs
	}
	if j.MaxGPUs > 0 && g > j.MaxGPUs {
		g = j.MaxGPUs
	}
	if g < 1 {
		g = 1
	}
	return topology.PrevPowerOfTwo(g)
}

// fitPow2 returns the largest feasible power-of-two allocation for j that is
// ≤ want and ≤ free, or 0 when even the memory floor does not fit.
func fitPow2(j *job.Job, want, free int) int {
	if want > free {
		want = free
	}
	if want < 1 {
		return 0
	}
	g := topology.PrevPowerOfTwo(want)
	if g < j.MinGPUs {
		return 0
	}
	if j.MaxGPUs > 0 && g > j.MaxGPUs {
		g = topology.PrevPowerOfTwo(j.MaxGPUs)
	}
	return g
}

// byDeadline sorts jobs by deadline, ties by submission then ID.
func byDeadline(jobs []*job.Job) []*job.Job {
	out := append([]*job.Job{}, jobs...)
	sort.Slice(out, func(i, k int) bool {
		if out[i].Deadline != out[k].Deadline {
			return out[i].Deadline < out[k].Deadline
		}
		if out[i].SubmitTime != out[k].SubmitTime {
			return out[i].SubmitTime < out[k].SubmitTime
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// bySubmit sorts jobs FIFO, ties by ID.
func bySubmit(jobs []*job.Job) []*job.Job {
	out := append([]*job.Job{}, jobs...)
	sort.Slice(out, func(i, k int) bool {
		if out[i].SubmitTime != out[k].SubmitTime {
			return out[i].SubmitTime < out[k].SubmitTime
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// EDF is the canonical earliest-deadline-first policy (§6.1): jobs run in
// deadline order, each scaled out to the point where adding GPUs stops
// increasing throughput.
type EDF struct{}

// Name implements sched.Scheduler.
func (EDF) Name() string { return "edf" }

// Admit implements sched.Scheduler: EDF has no admission control.
func (EDF) Admit(float64, *job.Job, []*job.Job, int) bool { return true }

// Schedule implements sched.Scheduler.
func (EDF) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	alloc := make(map[string]int, len(active))
	free := g
	for _, j := range byDeadline(active) {
		want := j.Curve.MaxUsefulWorkers(0)
		got := fitPow2(j, want, free)
		alloc[j.ID] = got
		free -= got
	}
	return sched.Decision{Alloc: alloc}
}

// Gandiva approximates Gandiva's introspective packing at job level: fixed
// trace-requested worker counts, no elasticity and no deadline awareness.
// When the cluster is oversubscribed, jobs time-slice: the packing order
// rotates every TimeSliceSec so waiting jobs eventually run, Gandiva's
// suspend/resume mechanism at this simulator's granularity.
type Gandiva struct {
	// TimeSliceSec is the rotation interval under contention (default
	// 600 s, Gandiva's minute-scale introspection).
	TimeSliceSec float64
}

// Name implements sched.Scheduler.
func (Gandiva) Name() string { return "gandiva" }

// Admit implements sched.Scheduler.
func (Gandiva) Admit(float64, *job.Job, []*job.Job, int) bool { return true }

// Schedule implements sched.Scheduler.
func (gv Gandiva) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	slice := gv.TimeSliceSec
	if slice <= 0 {
		slice = 600
	}
	order := bySubmit(active)
	// Rotate the packing order once per time slice so queued jobs share
	// the machine round-robin under contention.
	if len(order) > 0 {
		rot := int(now/slice) % len(order)
		order = append(order[rot:], order[:rot]...)
	}
	alloc := make(map[string]int, len(active))
	free := g
	queued := false
	for _, j := range order {
		req := requested(j)
		if req <= free {
			alloc[j.ID] = req
			free -= req
		} else {
			alloc[j.ID] = 0
			queued = true
		}
	}
	dec := sched.Decision{Alloc: alloc}
	if queued {
		dec.Wake = now + slice
	}
	return dec
}

// Tiresias implements the discretized least-attained-service discipline of
// Tiresias (NSDI'19): jobs fall through priority queues as their attained
// GPU time crosses successive thresholds (FIFO within a queue); the
// scheduler packs queues in priority order with the fixed trace-requested
// counts and preempts freely.
type Tiresias struct {
	// QueueThresholdGPUSec is the first queue boundary; each further
	// queue's boundary is 8× the previous (default 1 GPU-hour, two
	// demotions: queues at 1 h and 8 h attained GPU time).
	QueueThresholdGPUSec float64
	// Queues is the number of priority queues (default 3).
	Queues int
}

// Name implements sched.Scheduler.
func (Tiresias) Name() string { return "tiresias" }

// Admit implements sched.Scheduler.
func (Tiresias) Admit(float64, *job.Job, []*job.Job, int) bool { return true }

// attained estimates the GPU time job j has consumed: progress divided by
// the per-GPU throughput at its fixed count.
func attained(j *job.Job) float64 {
	g := requested(j)
	t := j.Curve.At(g)
	if t <= 0 {
		return 0
	}
	return j.DoneIters / t * float64(g)
}

// queueOf returns the priority queue index of a job (0 = highest).
func (t Tiresias) queueOf(j *job.Job) int {
	threshold := t.QueueThresholdGPUSec
	if threshold <= 0 {
		threshold = 3600
	}
	queues := t.Queues
	if queues <= 0 {
		queues = 3
	}
	a := attained(j)
	q := 0
	for q < queues-1 && a >= threshold {
		q++
		threshold *= 8
	}
	return q
}

// Schedule implements sched.Scheduler.
func (t Tiresias) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	order := append([]*job.Job{}, active...)
	sort.Slice(order, func(i, k int) bool {
		qi, qk := t.queueOf(order[i]), t.queueOf(order[k])
		if qi != qk {
			return qi < qk // higher-priority queue first
		}
		if order[i].SubmitTime != order[k].SubmitTime {
			return order[i].SubmitTime < order[k].SubmitTime
		}
		return order[i].ID < order[k].ID
	})
	alloc := make(map[string]int, len(active))
	free := g
	for _, j := range order {
		req := requested(j)
		if req <= free {
			alloc[j.ID] = req
			free -= req
		} else {
			alloc[j.ID] = 0
		}
	}
	// Queue membership shifts as service accrues; re-evaluate periodically
	// like Tiresias' background introspection.
	return sched.Decision{Alloc: alloc, Wake: now + 600}
}

// Themis approximates Themis' finish-time fairness auction: the jobs whose
// fairness ratio ρ (time with sharing over time running alone) is worst
// receive their fixed requests first.
type Themis struct{}

// Name implements sched.Scheduler.
func (Themis) Name() string { return "themis" }

// Admit implements sched.Scheduler.
func (Themis) Admit(float64, *job.Job, []*job.Job, int) bool { return true }

// rho computes finish-time fairness: elapsed plus remaining time under the
// current allocation, over the ideal time running alone at the requested
// count since submission.
func rho(j *job.Job, now float64) float64 {
	g := requested(j)
	ideal := j.TotalIters / j.Curve.At(g)
	cur := j.GPUs
	if cur <= 0 {
		cur = g
	}
	remaining := j.RemainingIters() / j.Curve.At(cur)
	shared := (now - j.SubmitTime) + remaining
	if ideal <= 0 {
		return 1
	}
	return shared / ideal
}

// Schedule implements sched.Scheduler.
func (Themis) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	order := append([]*job.Job{}, active...)
	sort.Slice(order, func(i, k int) bool {
		ri, rk := rho(order[i], now), rho(order[k], now)
		if ri != rk {
			return ri > rk // worst-off first
		}
		return order[i].ID < order[k].ID
	})
	alloc := make(map[string]int, len(active))
	free := g
	for _, j := range order {
		req := requested(j)
		if req <= free {
			alloc[j.ID] = req
			free -= req
		} else {
			alloc[j.ID] = 0
		}
	}
	return sched.Decision{Alloc: alloc, Wake: now + 600}
}

// Chronus is deadline-aware but not elastic (§6.1): it admits a job only if
// an EDF replay with fixed worker counts meets every admitted deadline, and
// schedules admitted jobs EDF with their fixed counts.
type Chronus struct{}

// Name implements sched.Scheduler.
func (Chronus) Name() string { return "chronus" }

// Admit implements sched.Scheduler: feasibility check via an EDF forward
// replay with fixed per-job worker counts.
func (Chronus) Admit(now float64, cand *job.Job, active []*job.Job, g int) bool {
	if !cand.HasDeadline() {
		return true
	}
	jobs := byDeadline(append(append([]*job.Job{}, active...), cand))
	// Replay: at each step, run the earliest-deadline runnable jobs with
	// their fixed counts and advance to the next completion.
	type st struct {
		j   *job.Job
		rem float64
		g   int
	}
	sts := make([]*st, 0, len(jobs))
	for _, j := range jobs {
		if !j.HasDeadline() {
			continue // best-effort jobs yield to SLO jobs under Chronus leases
		}
		sts = append(sts, &st{j: j, rem: j.RemainingIters(), g: requested(j)})
	}
	t := now
	for iter := 0; iter < 10000; iter++ {
		// Select runnable set in deadline order.
		free := g
		running := sts[:0:0]
		for _, s := range sts {
			if s.rem <= 1e-9 {
				continue
			}
			if s.g <= free {
				running = append(running, s)
				free -= s.g
			}
		}
		if len(running) == 0 {
			break
		}
		// Advance to the earliest completion among running jobs.
		dt := 0.0
		for i, s := range running {
			need := s.rem / s.j.Curve.At(s.g)
			if i == 0 || need < dt {
				dt = need
			}
		}
		t += dt
		for _, s := range running {
			s.rem -= s.j.Curve.At(s.g) * dt
			if s.rem <= 1e-9 && t > s.j.Deadline+1e-6 {
				return false
			}
		}
		// Deadline check for jobs finished exactly now happens above;
		// also fail fast when any unfinished job is already past due.
		for _, s := range sts {
			if s.rem > 1e-9 && t > s.j.Deadline+1e-6 {
				return false
			}
		}
	}
	for _, s := range sts {
		if s.rem > 1e-9 {
			return false
		}
	}
	return true
}

// Schedule implements sched.Scheduler.
func (Chronus) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	alloc := make(map[string]int, len(active))
	free := g
	// SLO jobs in deadline order first, then best-effort FIFO.
	var slo, be []*job.Job
	for _, j := range active {
		if j.HasDeadline() {
			slo = append(slo, j)
		} else {
			be = append(be, j)
		}
	}
	for _, j := range append(byDeadline(slo), bySubmit(be)...) {
		req := requested(j)
		if req <= free {
			alloc[j.ID] = req
			free -= req
		} else {
			alloc[j.ID] = 0
		}
	}
	return sched.Decision{Alloc: alloc}
}

// Pollux approximates Pollux's co-adaptive goodput maximization: elastic,
// deadline-unaware. Every job starts from its memory floor in FIFO order;
// leftover GPUs go to the job with the highest marginal normalized speedup
// per added GPU, mirroring Pollux's hill-climbing reallocation.
type Pollux struct{}

// Name implements sched.Scheduler.
func (Pollux) Name() string { return "pollux" }

// Admit implements sched.Scheduler.
func (Pollux) Admit(float64, *job.Job, []*job.Job, int) bool { return true }

// Schedule implements sched.Scheduler.
func (Pollux) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	alloc := make(map[string]int, len(active))
	free := g
	order := bySubmit(active)
	for _, j := range order {
		base := fitPow2(j, j.MinGPUs, free)
		alloc[j.ID] = base
		free -= base
	}
	// Hill-climb: repeatedly double the job with the best goodput gain
	// per GPU.
	for free > 0 {
		bestGain := 0.0
		var best *job.Job
		for _, j := range order {
			cur := alloc[j.ID]
			if cur == 0 {
				continue
			}
			next := cur * 2
			if j.MaxGPUs > 0 && next > j.MaxGPUs {
				continue
			}
			if next-cur > free {
				continue
			}
			gain := (j.Curve.At(next) - j.Curve.At(cur)) / j.Curve.At(j.Curve.MinWorkers()) / float64(next-cur)
			if gain > bestGain {
				bestGain, best = gain, j
			}
		}
		if best == nil {
			break
		}
		free -= alloc[best.ID]
		alloc[best.ID] *= 2
	}
	return sched.Decision{Alloc: alloc, Wake: now + 600}
}
