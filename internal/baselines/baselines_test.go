package baselines

import (
	"math"
	"testing"

	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/sched"
	"github.com/elasticflow/elasticflow/internal/throughput"
)

func fig3Curve() throughput.Curve {
	return throughput.MustCurve(map[int]float64{1: 1, 2: 1.5})
}

func mkJob(id string, iters, submit, deadline float64, req int) *job.Job {
	return &job.Job{
		ID:            id,
		GlobalBatch:   8,
		TotalIters:    iters,
		SubmitTime:    submit,
		Deadline:      deadline,
		Class:         job.SLO,
		Curve:         throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2}),
		MinGPUs:       1,
		MaxGPUs:       4,
		RequestedGPUs: req,
	}
}

// allSchedulers lists every baseline for interface-conformance checks.
func allSchedulers() []sched.Scheduler {
	return []sched.Scheduler{
		EDF{}, Gandiva{}, Tiresias{}, Themis{}, Chronus{}, Pollux{},
		EDFAdmission{}, EDFElastic{},
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range allSchedulers() {
		n := s.Name()
		if n == "" || seen[n] {
			t.Errorf("scheduler name %q empty or duplicated", n)
		}
		seen[n] = true
	}
}

func TestNoSchedulerOvercommits(t *testing.T) {
	jobs := []*job.Job{
		mkJob("a", 100, 0, 500, 4),
		mkJob("b", 100, 1, 400, 2),
		mkJob("c", 100, 2, 300, 1),
		mkJob("d", 100, 3, 600, 4),
	}
	for _, s := range allSchedulers() {
		dec := s.Schedule(10, jobs, 4)
		total := 0
		for _, g := range dec.Alloc {
			total += g
		}
		if total > 4 {
			t.Errorf("%s overcommitted %d/4 GPUs", s.Name(), total)
		}
	}
}

// TestEDFFailsFig3 reproduces Fig. 3(b): EDF gives job A both workers,
// finishing it at time 2, then runs B on both workers, finishing at 4 — past
// B's deadline of 3.5. (ElasticFlow's one-worker-each schedule meets both;
// see the core package tests.)
func TestEDFFailsFig3(t *testing.T) {
	a := &job.Job{ID: "A", GlobalBatch: 1, TotalIters: 3, Deadline: 3, Class: job.SLO,
		Curve: fig3Curve(), MinGPUs: 1, MaxGPUs: 2}
	b := &job.Job{ID: "B", GlobalBatch: 1, TotalIters: 3, Deadline: 3.5, Class: job.SLO,
		Curve: fig3Curve(), MinGPUs: 1, MaxGPUs: 2}
	e := EDF{}
	dec := e.Schedule(0, []*job.Job{a, b}, 2)
	if dec.Alloc["A"] != 2 || dec.Alloc["B"] != 0 {
		t.Fatalf("EDF alloc=%v want A:2 B:0", dec.Alloc)
	}
	// A finishes at 3/1.5 = 2; then B runs on 2 workers until 2+2 = 4.
	aDone := a.TotalIters / a.Curve.At(2)
	bDone := aDone + b.TotalIters/b.Curve.At(2)
	if bDone <= b.Deadline {
		t.Fatalf("expected B to miss its deadline under EDF, finishes at %v", bDone)
	}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	early := mkJob("early", 10, 0, 10, 1)
	late := mkJob("late", 10, 0, 100, 1)
	dec := EDF{}.Schedule(0, []*job.Job{late, early}, 4)
	// Earliest deadline gets its peak (4); the other waits.
	if dec.Alloc["early"] != 4 || dec.Alloc["late"] != 0 {
		t.Errorf("alloc=%v want early:4 late:0", dec.Alloc)
	}
}

func TestGandivaFIFOAndFixed(t *testing.T) {
	a := mkJob("a", 10, 0, 100, 2)
	b := mkJob("b", 10, 1, 50, 4) // earlier deadline but later submission
	dec := Gandiva{}.Schedule(2, []*job.Job{b, a}, 4)
	if dec.Alloc["a"] != 2 {
		t.Errorf("a got %d want its fixed request 2", dec.Alloc["a"])
	}
	// b's request of 4 does not fit after a's 2: it waits (no elasticity).
	if dec.Alloc["b"] != 0 {
		t.Errorf("b got %d want 0 (waits for its full request)", dec.Alloc["b"])
	}
}

func TestTiresiasPrefersLowAttainedService(t *testing.T) {
	veteran := mkJob("vet", 1e6, 0, 1e9, 4)
	veteran.DoneIters = 5e5 // huge attained service
	fresh := mkJob("new", 1e6, 100, 1e9, 4)
	dec := Tiresias{QueueThresholdGPUSec: 3600}.Schedule(200, []*job.Job{veteran, fresh}, 4)
	if dec.Alloc["new"] != 4 || dec.Alloc["vet"] != 0 {
		t.Errorf("alloc=%v want the fresh job prioritized (LAS)", dec.Alloc)
	}
}

func TestThemisPrefersWorstRho(t *testing.T) {
	// starved waited long since submission; fresh just arrived.
	starved := mkJob("starved", 100, 0, 1e9, 2)
	fresh := mkJob("fresh", 100, 999, 1e9, 2)
	dec := Themis{}.Schedule(1000, []*job.Job{fresh, starved}, 2)
	if dec.Alloc["starved"] != 2 || dec.Alloc["fresh"] != 0 {
		t.Errorf("alloc=%v want the starved job served first (finish-time fairness)", dec.Alloc)
	}
}

func TestChronusAdmitFeasible(t *testing.T) {
	c := Chronus{}
	a := mkJob("a", 100, 0, 120, 2) // 100 iters at tput 1.5 ⇒ 66.7s ≤ 120 ✓
	if !c.Admit(0, a, nil, 4) {
		t.Error("feasible job rejected")
	}
	// b needs the full cluster but a holds 2 GPUs; 4-GPU replay: a then b
	// can interleave? b: 300 iters at tput 1.5 with 2 GPUs = 200s > 150.
	b := mkJob("b", 300, 0, 150, 2)
	if c.Admit(0, b, []*job.Job{a}, 4) {
		t.Error("infeasible job admitted")
	}
}

func TestChronusBestEffortAdmitted(t *testing.T) {
	be := mkJob("be", 1e9, 0, 0, 4)
	be.Class = job.BestEffort
	be.Deadline = math.Inf(1)
	if !(Chronus{}).Admit(0, be, nil, 4) {
		t.Error("best-effort job rejected by Chronus")
	}
}

func TestPolluxElasticExpansion(t *testing.T) {
	// A single job on an idle cluster should be expanded beyond its
	// request (Pollux is elastic).
	a := mkJob("a", 100, 0, 1e9, 1)
	dec := Pollux{}.Schedule(0, []*job.Job{a}, 4)
	if dec.Alloc["a"] != 4 {
		t.Errorf("alloc=%d want 4 (goodput hill-climbing)", dec.Alloc["a"])
	}
}

func TestPolluxSharesByMarginalGoodput(t *testing.T) {
	good := mkJob("good", 100, 0, 1e9, 1)
	good.Curve = throughput.MustCurve(map[int]float64{1: 1, 2: 1.95, 4: 3.8})
	good.MaxGPUs = 4
	poor := mkJob("poor", 100, 0, 1e9, 1)
	poor.Curve = throughput.MustCurve(map[int]float64{1: 1, 2: 1.05, 4: 1.06})
	poor.MaxGPUs = 4
	// With 3 GPUs both start at 1 and only one can double: the spare GPU
	// must go to the job with the higher marginal goodput.
	dec := Pollux{}.Schedule(0, []*job.Job{good, poor}, 3)
	if dec.Alloc["good"] != 2 || dec.Alloc["poor"] != 1 {
		t.Errorf("alloc=%v want good:2 poor:1 (marginal goodput)", dec.Alloc)
	}
}

func TestEDFAdmissionRejectsOverload(t *testing.T) {
	// Second-resolution slots so the toy deadlines are representable.
	s := EDFAdmission{AC: core.New(core.Options{SlotSec: 1, PowerOfTwo: true, SafetyRescales: -1})}
	a := mkJob("a", 200, 0, 100, 4) // needs all 4 GPUs (tput 2) for 100s
	if !s.Admit(0, a, nil, 4) {
		t.Fatal("first job rejected")
	}
	b := mkJob("b", 200, 0, 100, 4)
	if s.Admit(0, b, []*job.Job{a}, 4) {
		t.Error("overloading job admitted despite admission control")
	}
}

func TestEDFElasticAdmitsEverything(t *testing.T) {
	s := EDFElastic{}
	for i := 0; i < 5; i++ {
		if !s.Admit(0, mkJob("x", 1e9, 0, 1, 4), nil, 1) {
			t.Error("EDF+ES must admit unconditionally")
		}
	}
}

func TestRequestedClamping(t *testing.T) {
	j := mkJob("a", 10, 0, 10, 3) // non-power-of-two request
	if got := requested(j); got != 2 {
		t.Errorf("requested=%d want 2 (power-of-two floor)", got)
	}
	j.RequestedGPUs = 0
	if got := requested(j); got != 1 {
		t.Errorf("requested=%d want MinGPUs=1", got)
	}
	j.RequestedGPUs = 64
	if got := requested(j); got != 4 {
		t.Errorf("requested=%d want MaxGPUs=4", got)
	}
}

// TestGandivaTimeSlicing: under contention the packing order rotates over
// time, so a queued job eventually runs.
func TestGandivaTimeSlicing(t *testing.T) {
	a := mkJob("a", 1e9, 0, 1e12, 4)
	b := mkJob("b", 1e9, 1, 1e12, 4)
	gv := Gandiva{TimeSliceSec: 100}
	d0 := gv.Schedule(0, []*job.Job{a, b}, 4)
	if d0.Alloc["a"] != 4 || d0.Alloc["b"] != 0 {
		t.Fatalf("t=0 alloc=%v want a running", d0.Alloc)
	}
	if d0.Wake != 100 {
		t.Errorf("wake=%v want next slice boundary", d0.Wake)
	}
	d1 := gv.Schedule(100, []*job.Job{a, b}, 4)
	if d1.Alloc["b"] != 4 || d1.Alloc["a"] != 0 {
		t.Errorf("t=100 alloc=%v want b running (rotation)", d1.Alloc)
	}
	// No contention: no wake needed.
	d2 := gv.Schedule(0, []*job.Job{a}, 4)
	if d2.Wake != 0 {
		t.Errorf("uncontended wake=%v want 0", d2.Wake)
	}
}

// TestTiresiasQueueDemotion: attained service walks a job down the queues.
func TestTiresiasQueueDemotion(t *testing.T) {
	ti := Tiresias{QueueThresholdGPUSec: 100, Queues: 3}
	j := mkJob("q", 1e9, 0, 1e12, 2) // tput 1.5 at 2 GPUs
	if got := ti.queueOf(j); got != 0 {
		t.Errorf("fresh job queue=%d want 0", got)
	}
	// attained = done/1.5*2; queue 1 boundary at 100 → done 75 crosses.
	j.DoneIters = 100
	if got := ti.queueOf(j); got != 1 {
		t.Errorf("queue=%d want 1 after first threshold", got)
	}
	// Queue 2 boundary at 800 GPU·s → done 600.
	j.DoneIters = 700
	if got := ti.queueOf(j); got != 2 {
		t.Errorf("queue=%d want 2 after second threshold", got)
	}
	// No deeper queues exist.
	j.DoneIters = 1e8
	if got := ti.queueOf(j); got != 2 {
		t.Errorf("queue=%d want 2 (last queue)", got)
	}
}
