package core

import (
	"testing"

	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/throughput"
)

// traceJob builds an SLO job with a linear speedup curve, deadline seconds
// after now=0, and remaining iterations.
func traceJob(id string, iters, deadline float64) *job.Job {
	return &job.Job{
		ID:         id,
		Class:      job.SLO,
		TotalIters: iters,
		Deadline:   deadline,
		Curve:      throughput.MustCurve(map[int]float64{1: 1, 2: 2, 4: 4, 8: 8, 16: 16}),
		MinGPUs:    1,
		MaxGPUs:    16,
	}
}

func lastEventOfKind(o *obs.Obs, kind string) (obs.Event, bool) {
	evs := o.Bus.Since(0)
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == kind {
			return evs[i], true
		}
	}
	return obs.Event{}, false
}

// TestAdmitTraceVerdicts: admission publishes one sched-admit event per
// decision carrying the verdict, the deciding reason and the candidate's
// minimum satisfactory share.
func TestAdmitTraceVerdicts(t *testing.T) {
	o := obs.NewDefault()
	e := New(Options{SlotSec: 1, PowerOfTwo: true, Obs: o})

	good := traceJob("good", 100, 200)
	if !e.Admit(0, good, nil, 16) {
		t.Fatal("feasible job not admitted")
	}
	ev, ok := lastEventOfKind(o, obs.KindSchedAdmit)
	if !ok {
		t.Fatal("no sched-admit event after Admit")
	}
	if ev.JobID != "good" {
		t.Errorf("trace job = %s, want good", ev.JobID)
	}
	if v, _ := ev.Field("verdict"); v != "admit" {
		t.Errorf("verdict = %s, want admit", v)
	}
	if r, _ := ev.Field("reason"); r != "ok" {
		t.Errorf("reason = %s, want ok", r)
	}
	if _, ok := ev.Field("mss_gpus"); !ok {
		t.Error("admitted trace missing mss_gpus")
	}

	// Impossible: needs far more GPU time than 16 GPUs × 10 s provide.
	bad := traceJob("bad", 1e6, 10)
	if e.Admit(0, bad, nil, 16) {
		t.Fatal("infeasible job admitted")
	}
	ev, _ = lastEventOfKind(o, obs.KindSchedAdmit)
	if v, _ := ev.Field("verdict"); v != "drop" {
		t.Errorf("verdict = %s, want drop", v)
	}
	if r, _ := ev.Field("reason"); r != "candidate-infeasible" {
		t.Errorf("reason = %s, want candidate-infeasible", r)
	}

	// Quota rejection is its own reason.
	deny := New(Options{SlotSec: 1, PowerOfTwo: true, Obs: o, Quota: func(*job.Job) bool { return false }})
	if deny.Admit(0, traceJob("q", 100, 200), nil, 16) {
		t.Fatal("quota-denied job admitted")
	}
	ev, _ = lastEventOfKind(o, obs.KindSchedAdmit)
	if r, _ := ev.Field("reason"); r != "quota-denied" {
		t.Errorf("reason = %s, want quota-denied", r)
	}
}

// TestAdmitTraceBreaksGuarantee: a candidate that starves an earlier
// admission is rejected naming the victim.
func TestAdmitTraceBreaksGuarantee(t *testing.T) {
	o := obs.NewDefault()
	e := New(Options{SlotSec: 1, PowerOfTwo: true, Obs: o})

	// First job consumes most of the cluster until t=20.
	a := traceJob("a", 200, 20)
	if !e.Admit(0, a, nil, 16) {
		t.Fatal("job a not admitted")
	}
	// Tight-deadline candidate would need the capacity job a holds. Its
	// own fill (earlier deadline, fills first) succeeds but pushes a over.
	b := traceJob("b", 150, 15)
	if e.Admit(0, b, []*job.Job{a}, 16) {
		t.Fatal("job b admitted over a's guarantee")
	}
	ev, ok := lastEventOfKind(o, obs.KindSchedAdmit)
	if !ok {
		t.Fatal("no sched-admit event")
	}
	if r, _ := ev.Field("reason"); r != "breaks-guarantee" {
		t.Fatalf("reason = %s, want breaks-guarantee", r)
	}
	if v, _ := ev.Field("victim"); v != "a" {
		t.Errorf("victim = %s, want a", v)
	}
}

// TestScheduleTrace: each Schedule call publishes one sched-alloc summary
// with spare-round accounting.
func TestScheduleTrace(t *testing.T) {
	o := obs.NewDefault()
	e := New(Options{SlotSec: 1, PowerOfTwo: true, Obs: o})
	j := traceJob("solo", 100, 1000)
	j.State = job.Admitted
	dec := e.Schedule(0, []*job.Job{j}, 16)
	if dec.Alloc["solo"] <= 0 {
		t.Fatalf("no allocation for solo: %v", dec.Alloc)
	}
	ev, ok := lastEventOfKind(o, obs.KindSchedAlloc)
	if !ok {
		t.Fatal("no sched-alloc event after Schedule")
	}
	if v, _ := ev.Field("jobs"); v != "1" {
		t.Errorf("jobs = %s, want 1", v)
	}
	if _, ok := ev.Field("spare_rounds"); !ok {
		t.Error("sched-alloc missing spare_rounds")
	}
	if v, _ := ev.Field("capacity"); v != "16" {
		t.Errorf("capacity = %s, want 16", v)
	}
	// A loose deadline leaves spare capacity: the solo job should win
	// spare rounds above its 1-GPU MSS.
	if w, ok := ev.Field("winners"); ok && w == "" {
		t.Errorf("winners present but empty")
	}
}
