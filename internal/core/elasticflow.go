// Package core implements the ElasticFlow scheduler: deadline-driven
// admission control based on Minimum Satisfactory Share (§4.1), greedy
// elastic resource allocation by diminishing returns (§4.2), and the
// best-effort/soft-deadline extension (§4.4).
//
// The scheduler is purely algorithmic: it consumes job state and produces
// desired worker counts. Placement is delegated to the buddy allocator
// (package topology) and execution to the simulator or the live platform.
package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/obs/tracing"
	"github.com/elasticflow/elasticflow/internal/plan"
	"github.com/elasticflow/elasticflow/internal/sched"
)

// Options configures the scheduler.
type Options struct {
	// SlotSec is the planning slot duration in seconds (default 60).
	SlotSec float64
	// PowerOfTwo restricts worker counts to powers of two so buddy
	// placement is fragmentation-free (§4.3). Default true; the false
	// setting runs Algorithms 1–2 with unit increments, for the ablation.
	PowerOfTwo bool
	// HorizonSlots caps the planning horizon for jobs without deadlines
	// (default 7 days of slots).
	HorizonSlots int
	// SafetyRescales is the per-job rescale budget: the number of rescale
	// overheads subtracted from each deadline during planning, absorbing
	// the scaling costs the slot-level model does not see (default 5).
	// Rescales actually charged to a job (job.Rescales, incremented by the
	// simulator/platform on every real rescale including failure-driven
	// restarts) reduce the remaining margin — see rescaleMargin — and once
	// the budget is spent the allocator stops volunteering the job for
	// further expansions. The margin is empirical, not a proof (fuzzing
	// found misses at 3 with five-rescale churn; see ROADMAP.md).
	SafetyRescales float64
	// Quota, when non-nil, is consulted before finally admitting a job
	// (§4.4 "malicious users"): returning false rejects the job even when
	// its deadline could be guaranteed.
	Quota func(*job.Job) bool
	// ReserveGPUs withholds capacity from admission control so that
	// guarantees survive node failures (§4.4 "node failures"): admission
	// plans against G−ReserveGPUs while allocation still uses everything
	// that is up.
	ReserveGPUs int
	// DisablePlanCache turns off the incremental fill-pass cache so every
	// Admit/Schedule recomputes plans from scratch. Decisions are
	// byte-identical either way (the cache replays the exact operation
	// sequence from snapshots); the switch exists for cold-path benchmarks
	// and the determinism cross-checks.
	DisablePlanCache bool
	// Obs, when non-nil, receives decision traces on its event bus: one
	// "sched-admit" event per admission verdict explaining why (which
	// feasibility check failed, the victim whose guarantee would break,
	// the candidate's minimum satisfactory share) and one "sched-alloc"
	// event per Schedule call summarizing the allocation round (spare-GPU
	// adoptions and their winners, demoted jobs, slot-0 usage). Tracing is
	// purely additive — decisions never read the sink back — and metric
	// counters stay the engine layers' (sim, serverless) responsibility so
	// series are not double-counted.
	Obs *obs.Obs
}

func (o Options) withDefaults() Options {
	if o.SlotSec <= 0 {
		o.SlotSec = 60
	}
	if o.HorizonSlots <= 0 {
		o.HorizonSlots = int(7 * 24 * 3600 / o.SlotSec)
		if o.HorizonSlots <= 0 {
			o.HorizonSlots = 1
		}
		// Cap the horizon: sub-second slots would otherwise make plans
		// enormous.
		if o.HorizonSlots > 1<<20 {
			o.HorizonSlots = 1 << 20
		}
	}
	if o.SafetyRescales == 0 {
		o.SafetyRescales = 5
	}
	return o
}

// ElasticFlow is the scheduler. Decisions are pure functions of the current
// job set, exactly as the paper recomputes plans on every scheduling event
// (§4.2); the only state between calls is the plan cache, a transparent
// memo of fill passes that never changes a decision (see plancache.go).
type ElasticFlow struct {
	opts Options

	mu     sync.Mutex
	gen    uint64        // guarded by mu
	states [2]*fillState // guarded by mu; most recently used first
}

// New creates an ElasticFlow scheduler. The zero Options select the paper's
// configuration: 60-second slots with power-of-two buddy-compatible
// allocations.
func New(opts Options) *ElasticFlow {
	o := opts
	if !o.PowerOfTwo {
		// Distinguish "explicitly unit mode" only via the option the
		// caller set; the default is power-of-two.
	}
	return &ElasticFlow{opts: o.withDefaults()}
}

// NewDefault returns a scheduler with the paper's default configuration.
func NewDefault() *ElasticFlow { return New(Options{PowerOfTwo: true}) }

// WithObs injects the observability sink after construction (the serverless
// platform uses this to wire the default scheduler to its own Obs) and
// returns e for chaining.
func (e *ElasticFlow) WithObs(o *obs.Obs) *ElasticFlow {
	e.opts.Obs = o
	return e
}

// Name implements the scheduler interface used by the simulator.
func (e *ElasticFlow) Name() string { return "elasticflow" }

// SlotSec returns the planning slot duration.
func (e *ElasticFlow) SlotSec() float64 { return e.opts.SlotSec }

// demand converts an SLO job's state at time now into a filling demand
// bounded by its deadline.
func (e *ElasticFlow) demand(j *job.Job, now float64) plan.Demand {
	d := plan.Demand{
		Curve:     j.Curve,
		Remaining: j.RemainingIters(),
		MinGPUs:   j.MinGPUs,
		MaxGPUs:   j.MaxGPUs,
	}
	if !j.HasDeadline() || j.Class != job.SLO {
		return e.demandBestEffort(j)
	}
	safety := e.rescaleMargin(j)
	slots := int(math.Floor((j.Deadline - now - safety) / e.opts.SlotSec))
	if slots < 0 {
		slots = 0
	}
	if slots > e.opts.HorizonSlots {
		slots = e.opts.HorizonSlots
	}
	d.DeadlineSlot = slots
	return d
}

// rescaleMargin is the deadline slack still reserved for a job's future
// rescales at replan time: the SafetyRescales budget minus the rescales the
// job has actually been charged (job.Rescales — including failure-driven
// restarts), floored at one overhead so a plan is never laid flush against
// the deadline. Spent rescales therefore stop eroding the margin twice:
// their cost is already in the elapsed clock, and only the *remaining*
// budget is held back. Negative budgets keep the legacy fixed margin.
// Margins reserve MoveOverheadSec — the migration-priced cost when the
// checkpoint has been sized — because any reserved rescale may also move
// the job across a link; a margin that only covers an in-place rescale
// lays the plan too close to the deadline.
func (e *ElasticFlow) rescaleMargin(j *job.Job) float64 {
	s := e.opts.SafetyRescales
	if s < 0 {
		return s * j.MoveOverheadSec()
	}
	rem := s - float64(j.Rescales)
	if rem < 1 {
		rem = 1
	}
	return rem * j.MoveOverheadSec()
}

// demandBestEffort builds the demand of a job scheduled without a deadline
// guarantee (§4.4): its deadline is conceptually infinite, realized as a
// synthetic horizon of twice the time the job needs at its minimum worker
// count (plus slack for contention), so that progressive filling yields the
// minimum level and the greedy allocator can price marginal returns on the
// same GPU-time scale as SLO jobs.
func (e *ElasticFlow) demandBestEffort(j *job.Job) plan.Demand {
	d := plan.Demand{
		Curve:     j.Curve,
		Remaining: j.RemainingIters(),
		MinGPUs:   j.MinGPUs,
		MaxGPUs:   j.MaxGPUs,
	}
	slots := e.opts.HorizonSlots
	minTput := j.Curve.At(maxInt(j.MinGPUs, j.Curve.MinWorkers()))
	if minTput > 0 {
		need := 2*int(math.Ceil(j.RemainingIters()/(minTput*e.opts.SlotSec))) + 16
		if need < slots {
			slots = need
		}
	}
	d.DeadlineSlot = slots
	return d
}

// sloJobs returns the SLO jobs of active sorted by deadline (ties by ID for
// determinism), and the best-effort/soft-deadline jobs in submission order.
func splitJobs(active []*job.Job) (slo, be []*job.Job) {
	for _, j := range active {
		if j.Class == job.SLO {
			slo = append(slo, j)
		} else {
			be = append(be, j)
		}
	}
	// Ordered comparisons instead of float != keep the comparator exact
	// (an epsilon here would break strict weak ordering); ties fall
	// through to the ID for determinism.
	sort.Slice(slo, func(i, k int) bool {
		if slo[i].Deadline < slo[k].Deadline {
			return true
		}
		if slo[i].Deadline > slo[k].Deadline {
			return false
		}
		return slo[i].ID < slo[k].ID
	})
	sort.Slice(be, func(i, k int) bool {
		if be[i].SubmitTime < be[k].SubmitTime {
			return true
		}
		if be[i].SubmitTime > be[k].SubmitTime {
			return false
		}
		return be[i].ID < be[k].ID
	})
	return slo, be
}

// Admit implements Algorithm 1. It checks whether adding cand to the active
// SLO jobs leaves every deadline satisfiable by progressive filling in
// deadline order; if not, cand is dropped. Best-effort and soft-deadline
// jobs are always admitted (§4.4). The optional quota policy runs last.
//
// A previously admitted job whose own deadline has become unsatisfiable
// (it runs demoted, §4.4) must not poison future admissions: the check
// rejects cand only when cand itself cannot be satisfied or when admitting
// cand turns a currently satisfiable job unsatisfiable.
func (e *ElasticFlow) Admit(now float64, cand *job.Job, active []*job.Job, g int) bool {
	admitDecisions.Add(1)
	var v admitVerdict
	if cand.Class != job.SLO {
		if e.quotaOK(cand) {
			v = admitVerdict{ok: true, reason: "no-guarantee-needed"}
		} else {
			v = admitVerdict{reason: "quota-denied"}
		}
	} else {
		v = e.admitExplained(now, cand, active, g)
		if v.ok && !e.quotaOK(cand) {
			v = admitVerdict{reason: "quota-denied"}
		}
	}
	e.traceAdmit(now, cand, v)
	return v.ok
}

// admitVerdict is the explained outcome of one Algorithm 1 run: whether the
// candidate is admitted and, when not, which check failed.
type admitVerdict struct {
	ok bool
	// reason is "ok" (deadline guaranteed), "no-guarantee-needed"
	// (best-effort/soft-deadline, always admitted), "candidate-infeasible"
	// (the candidate's own deadline cannot be met by progressive filling
	// after every earlier-deadline job takes its share),
	// "breaks-guarantee" (admitting would turn a currently satisfiable
	// job's deadline unsatisfiable), or "quota-denied" (operator policy).
	reason string
	// victim is the job whose guarantee would break, for
	// "breaks-guarantee".
	victim string
	// mss is the candidate's minimum satisfactory share fill, valid when
	// the candidate itself was feasible.
	mss plan.Allocation
}

// admissible is Admit without the operator-policy hook or tracing: the pure
// feasibility decision of Algorithm 1 (EarliestDeadline probes through it).
func (e *ElasticFlow) admissible(now float64, cand *job.Job, active []*job.Job, g int) bool {
	return e.admitExplained(now, cand, active, g).ok
}

// admitExplained runs Algorithm 1 and reports which check decided the
// verdict.
func (e *ElasticFlow) admitExplained(now float64, cand *job.Job, active []*job.Job, g int) admitVerdict {
	// Admission plans against the failure reserve so that guarantees
	// survive losing that much capacity (§4.4).
	gAdmit := g - e.opts.ReserveGPUs
	if gAdmit < 1 {
		gAdmit = 1
	}
	// Pass 1: which active jobs are satisfiable today?
	okWithout, _ := e.feasibleSet(now, active, nil, gAdmit)
	// Pass 2: and with the candidate added?
	okWith, candFill := e.feasibleSet(now, active, cand, gAdmit)
	if !okWith[cand.ID] {
		return admitVerdict{reason: "candidate-infeasible", mss: candFill}
	}
	// Deterministic victim: report the first broken guarantee in deadline
	// order rather than map order.
	slo, _ := splitJobs(active)
	for _, j := range slo {
		if okWithout[j.ID] && !okWith[j.ID] {
			return admitVerdict{reason: "breaks-guarantee", victim: j.ID, mss: candFill}
		}
	}
	return admitVerdict{ok: true, reason: "ok", mss: candFill}
}

// traceAdmit publishes the admission decision trace.
func (e *ElasticFlow) traceAdmit(now float64, cand *job.Job, v admitVerdict) {
	o := e.opts.Obs
	if o == nil {
		return
	}
	verdict := "drop"
	if v.ok {
		verdict = "admit"
	}
	fields := []obs.Field{obs.F("verdict", verdict), obs.F("reason", v.reason)}
	if v.victim != "" {
		fields = append(fields, obs.F("victim", v.victim))
	}
	if len(v.mss.Levels) > 0 {
		fields = append(fields,
			obs.F("mss_gpus", v.mss.GPUsAt(0)),
			obs.F("mss_satisfied", v.mss.Satisfied),
			obs.F("mss_finish_slot", v.mss.FinishSlot))
	}
	o.Event(now, obs.KindSchedAdmit, cand.ID, fields...)
	// The plan span records the feasibility plan behind the verdict under
	// the candidate's lifecycle root (the platform opens the root before
	// calling Admit, so auto-parenting lands it there).
	attrs := []tracing.Attr{tracing.A("reason", v.reason)}
	if v.victim != "" {
		attrs = append(attrs, tracing.A("victim", v.victim))
	}
	if len(v.mss.Levels) > 0 {
		attrs = append(attrs,
			tracing.A("mss_gpus", v.mss.GPUsAt(0)),
			tracing.A("mss_satisfied", v.mss.Satisfied),
			tracing.A("mss_finish_slot", v.mss.FinishSlot))
	}
	o.Tracer().Emit(now, tracing.SpanPlan, cand.ID, attrs...)
}

// AdmitBatch amortizes Algorithm 1 across one admission batch — a sequence
// of candidates decided at a single timestamp against an append-only active
// set (the serverless platform's batched submit path). Two folds are reused:
//
//   - Pass 1 of admitExplained (which active jobs are satisfiable today)
//     depends only on (now, active, g), so it is computed once per active-set
//     length instead of once per candidate.
//   - A rejected candidate's verdict and counter-offer depend only on its
//     shape (model, batch geometry, work, deadline, GPU bounds) — never its
//     ID, because every batch candidate carries a later sequence number than
//     any active job, so same-shape candidates occupy the same fill
//     position. Later same-shape candidates reuse the memoized drop.
//
// Both caches invalidate when an admission grows the active set. Sessions
// are single-goroutine, like the scheduler itself.
type AdmitBatch struct {
	e   *ElasticFlow
	now float64
	g   int

	okWithout map[string]bool         // pass-1 cache, valid at passLen
	passLen   int                     // active length the caches were built at
	passValid bool                    // false until the first SLO candidate
	drops     map[string]admitVerdict // shape → memoized rejection
	offers    map[string]offerMemo    // shape → memoized counter-offer
}

// offerMemo is a memoized EarliestDeadline answer.
type offerMemo struct {
	deadline float64
	ok       bool
}

// BeginAdmitBatch opens an admission session for one batch decided at now
// against capacity g.
func (e *ElasticFlow) BeginAdmitBatch(now float64, g int) *AdmitBatch {
	return &AdmitBatch{e: e, now: now, g: g}
}

// shapeKey identifies the candidate fields the feasibility fill reads. IDs
// are deliberately excluded (see the AdmitBatch contract).
func shapeKey(j *job.Job) string {
	return fmt.Sprintf("%s|%d|%g|%g|%d|%d|%g",
		j.Model.Name, j.GlobalBatch, j.TotalIters, j.Deadline,
		j.MinGPUs, j.MaxGPUs, j.RescaleOverheadSec)
}

// refresh rebuilds the pass-1 cache and clears the shape memos when the
// active set has changed since they were built.
func (b *AdmitBatch) refresh(active []*job.Job, gAdmit int) {
	if b.passValid && len(active) == b.passLen {
		return
	}
	b.okWithout, _ = b.e.feasibleSet(b.now, active, nil, gAdmit)
	b.passLen = len(active)
	b.passValid = true
	b.drops = nil
	b.offers = nil
}

// Admit is Algorithm 1 for one candidate of the batch, trace-identical to
// ElasticFlow.Admit. active must reflect every admission the batch has made
// so far (append-only between calls).
func (b *AdmitBatch) Admit(cand *job.Job, active []*job.Job) bool {
	admitDecisions.Add(1)
	var v admitVerdict
	if cand.Class != job.SLO {
		if b.e.quotaOK(cand) {
			v = admitVerdict{ok: true, reason: "no-guarantee-needed"}
		} else {
			v = admitVerdict{reason: "quota-denied"}
		}
		b.e.traceAdmit(b.now, cand, v)
		return v.ok
	}
	gAdmit := b.g - b.e.opts.ReserveGPUs
	if gAdmit < 1 {
		gAdmit = 1
	}
	b.refresh(active, gAdmit)
	key := shapeKey(cand)
	if dv, ok := b.drops[key]; ok {
		b.e.traceAdmit(b.now, cand, dv)
		return false
	}
	okWith, candFill := b.e.feasibleSet(b.now, active, cand, gAdmit)
	switch {
	case !okWith[cand.ID]:
		v = admitVerdict{reason: "candidate-infeasible", mss: candFill}
	default:
		v = admitVerdict{ok: true, reason: "ok", mss: candFill}
		slo, _ := splitJobs(active)
		for _, j := range slo {
			if b.okWithout[j.ID] && !okWith[j.ID] {
				v = admitVerdict{reason: "breaks-guarantee", victim: j.ID, mss: candFill}
				break
			}
		}
		if v.ok && !b.e.quotaOK(cand) {
			v = admitVerdict{reason: "quota-denied"}
		}
	}
	// Quota is operator policy — it may depend on more than the shape, so
	// only feasibility rejections are memoized.
	if !v.ok && v.reason != "quota-denied" {
		if b.drops == nil {
			b.drops = make(map[string]admitVerdict)
		}
		b.drops[key] = v
	}
	b.e.traceAdmit(b.now, cand, v)
	return v.ok
}

// EarliestDeadline is the memoized counter-offer for a rejected candidate:
// the binary search is shape-determined, so same-shape drops in one batch
// pay for it once.
func (b *AdmitBatch) EarliestDeadline(cand *job.Job, active []*job.Job) (float64, bool) {
	gAdmit := b.g - b.e.opts.ReserveGPUs
	if gAdmit < 1 {
		gAdmit = 1
	}
	b.refresh(active, gAdmit)
	key := shapeKey(cand)
	if m, ok := b.offers[key]; ok {
		return m.deadline, m.ok
	}
	dl, ok := b.e.EarliestDeadline(b.now, cand, active, b.g)
	if b.offers == nil {
		b.offers = make(map[string]offerMemo)
	}
	b.offers[key] = offerMemo{deadline: dl, ok: ok}
	return dl, ok
}

// EarliestDeadline returns the soonest deadline admission control could
// guarantee for cand given the currently admitted jobs — what a platform
// offers a user whose requested deadline was rejected ("the earliest we
// could promise is …"). Feasibility is monotone in the deadline, so the
// answer is found by binary search over planning slots. ok is false when
// even the planning horizon cannot fit the job.
func (e *ElasticFlow) EarliestDeadline(now float64, cand *job.Job, active []*job.Job, g int) (float64, bool) {
	deadlineAt := func(slots int) float64 {
		return now + e.rescaleMargin(cand) + float64(slots+1)*e.opts.SlotSec
	}
	check := func(slots int) bool {
		c := *cand
		c.Deadline = deadlineAt(slots)
		return e.admissible(now, &c, active, g)
	}
	lo, hi := 0, e.opts.HorizonSlots
	if !check(hi) {
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if check(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return deadlineAt(lo), true
}

// feasibleSet runs the deadline-ordered progressive filling over the SLO
// jobs of active (plus cand when non-nil) and reports which job IDs end up
// satisfied, along with the candidate's own fill — its minimum satisfactory
// share when feasible. Unsatisfiable jobs do not reserve capacity,
// mirroring their demotion to best-effort in Schedule.
func (e *ElasticFlow) feasibleSet(now float64, active []*job.Job, cand *job.Job, g int) (map[string]bool, plan.Allocation) {
	jobs := active
	skip := ""
	if cand != nil {
		jobs = append(append(make([]*job.Job, 0, len(active)+1), active...), cand)
		skip = cand.ID
	}
	slo, _ := splitJobs(jobs)
	recs, _ := e.fillPass(now, slo, nil, skip, g)
	out := make(map[string]bool, len(slo))
	var candFill plan.Allocation
	for i := range recs {
		out[recs[i].id] = recs[i].satisfied
		if cand != nil && recs[i].id == cand.ID {
			candFill = recs[i].fill
		}
	}
	return out, candFill
}

func (e *ElasticFlow) quotaOK(j *job.Job) bool {
	return e.opts.Quota == nil || e.opts.Quota(j)
}

// MinimumSatisfactoryShare returns the MSS plan for each active job at time
// now: the per-slot worker counts that just meet every deadline (§4.1).
// Jobs appear in deadline order. Unsatisfiable jobs (which admission would
// have rejected) receive their maximal best-effort plan.
func (e *ElasticFlow) MinimumSatisfactoryShare(now float64, active []*job.Job, g int) map[string]plan.Allocation {
	slo, _ := splitJobs(active)
	f := plan.NewFiller(g, e.opts.SlotSec, e.opts.PowerOfTwo)
	out := make(map[string]plan.Allocation, len(slo))
	for _, j := range slo {
		a := f.Fill(e.demand(j, now))
		f.Commit(a)
		out[j.ID] = a
	}
	return out
}

// prioJob is a priority-queue entry for Algorithm 2.
type prioJob struct {
	j          *job.Job
	d          plan.Demand
	bestEffort bool            // scheduled without a deadline guarantee
	cur        plan.Allocation // committed allocation
	alt        plan.Allocation // probe: one level more at slot 0
	nextStep   int             // slot-0 worker count of the probe
	priority   float64         // GPU time saved by the probe
	won        int             // spare-GPU rounds won (adopted probes)
	late       bool            // admitted job racing its expired deadline
	index      int
}

type prioQueue []*prioJob

func (q prioQueue) Len() int            { return len(q) }
func (q prioQueue) Less(i, k int) bool  { return q[i].priority > q[k].priority }
func (q prioQueue) Swap(i, k int)       { q[i], q[k] = q[k], q[i]; q[i].index = i; q[k].index = k }
func (q *prioQueue) Push(x interface{}) { p := x.(*prioJob); p.index = len(*q); *q = append(*q, p) }
func (q *prioQueue) Pop() interface{} {
	old := *q
	n := len(old)
	p := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return p
}

// nextStep returns the next slot-0 worker count to probe above cur for a
// job: the memory floor when idle, then +1 (unit mode) or ×2 (power-of-two
// mode), capped by MaxGPUs. Returns 0 when no step exists.
func (e *ElasticFlow) nextStep(j *job.Job, cur int) int {
	var next int
	switch {
	case cur == 0:
		next = maxInt(1, j.MinGPUs)
		if e.opts.PowerOfTwo {
			p := 1
			for p < next {
				p *= 2
			}
			next = p
		}
	case e.opts.PowerOfTwo:
		next = cur * 2
	default:
		next = cur + 1
	}
	if j.MaxGPUs > 0 && next > j.MaxGPUs {
		return 0
	}
	return next
}

// probe computes the marginal-return candidate for p's job: the current
// plan with slot 0 raised to the next step (Algorithm 2 lines 5–10; the
// tail is kept rather than minimally re-filled so the probe is a strict
// improvement — see plan.RaiseSlot0). It requires p.cur to be uncommitted
// from f during the call; the caller manages commit state. Returns false
// when no beneficial probe exists.
func (e *ElasticFlow) probe(f *plan.Filler, p *prioJob) bool {
	step := e.nextStep(p.j, p.cur.GPUsAt(0))
	if step == 0 {
		return false
	}
	if step-p.cur.GPUsAt(0) > f.FreeAt(0) {
		return false
	}
	alt := f.RaiseSlot0(p.d, p.cur, step)
	if alt.GPUsAt(0) != step {
		// The pinned level was clamped away (capacity or feasibility):
		// no usable probe.
		return false
	}
	// Line 10: only consider probes that actually finish the job earlier.
	// When adopting the probe would rescale a running job away from its
	// live worker count, the gain must also exceed the checkpoint/restore
	// freeze the rescale costs — expansions that save less than they
	// stall for are churn, and churn is what erodes deadline guarantees.
	need := 1e-12
	started := p.j.GPUs > 0 || p.j.DoneIters > 0
	if started && p.cur.GPUsAt(0) == p.j.GPUs && step != p.j.GPUs {
		// A guaranteed job that has already consumed its SafetyRescales
		// budget stops volunteering for expansions: what margin remains
		// is reserved for mandatory replans (contention, failures).
		if !p.bestEffort && e.opts.SafetyRescales >= 0 && float64(p.j.Rescales) >= e.opts.SafetyRescales {
			return false
		}
		// The expansion may relocate the job, so the gain must beat the
		// migration-priced cost, not just the in-place rescale.
		need = p.j.MoveOverheadSec()
	}
	if !(p.cur.FinishTime(e.opts.SlotSec)-alt.FinishTime(e.opts.SlotSec) > need) {
		return false
	}
	// For guaranteed jobs the probe must still satisfy the deadline.
	if !p.bestEffort && p.cur.Satisfied && !alt.Satisfied {
		return false
	}
	p.alt = alt
	p.nextStep = step
	p.priority = p.cur.GPUTime - alt.GPUTime
	return true
}

// Schedule implements Algorithm 2: allocate the minimum satisfactory share
// of every SLO job, then hand remaining capacity to the job with the
// greatest marginal return, one step at a time, until slot 0 is full or no
// job benefits. Best-effort jobs join the queue with an empty base
// allocation (§4.4). The returned Decision holds each job's slot-0 worker
// count and a wake-up time at the next planned allocation change.
func (e *ElasticFlow) Schedule(now float64, active []*job.Job, g int) sched.Decision {
	// One sched.epoch span per allocation round — the plan-cache fold over
	// the active job set (plancache.go runs inside allocate).
	epoch := e.opts.Obs.Tracer().Begin(now, tracing.SpanSchedEpoch, "")
	entries, adoptions := e.allocate(now, active, g)
	// Emit slot-0 allocations and the earliest planned change.
	dec := sched.Decision{Alloc: make(map[string]int, len(entries))}
	wake := math.Inf(1)
	for _, p := range entries {
		dec.Alloc[p.j.ID] = p.cur.GPUsAt(0)
		if t := p.cur.FirstChangeSlot(); t > 0 {
			if w := now + float64(t)*e.opts.SlotSec; w < wake {
				wake = w
			}
		}
	}
	if !math.IsInf(wake, 1) {
		dec.Wake = wake
	}
	e.traceSchedule(now, g, entries, adoptions)
	used := 0
	for _, p := range entries {
		used += p.cur.GPUsAt(0)
	}
	e.opts.Obs.Tracer().End(now, epoch,
		tracing.A("jobs", len(entries)), tracing.A("spare_rounds", adoptions),
		tracing.A("used_gpus", used), tracing.A("capacity", g))
	return dec
}

// traceSchedule publishes one allocation-round summary: how Algorithm 2
// spent the spare capacity on top of the minimum satisfactory shares.
func (e *ElasticFlow) traceSchedule(now float64, g int, entries []*prioJob, adoptions int) {
	o := e.opts.Obs
	if o == nil || len(entries) == 0 {
		return
	}
	used, nBE, nLate := 0, 0, 0
	var winners []string
	for _, p := range entries {
		used += p.cur.GPUsAt(0)
		if p.bestEffort {
			nBE++
		}
		if p.late {
			nLate++
		}
		if p.won > 0 {
			winners = append(winners, fmt.Sprintf("%s:%d", p.j.ID, p.won))
		}
	}
	fields := []obs.Field{
		obs.F("jobs", len(entries)),
		obs.F("slo", len(entries)-nBE),
		obs.F("best_effort", nBE),
		obs.F("late", nLate),
		obs.F("spare_rounds", adoptions),
		obs.F("used_gpus", used),
		obs.F("capacity", g),
	}
	if len(winners) > 0 {
		fields = append(fields, obs.F("winners", strings.Join(winners, ",")))
	}
	o.Event(now, obs.KindSchedAlloc, "", fields...)
}

// Plans returns the full allocation plan Algorithm 2 computes for each
// active job: the per-slot worker counts from now until each job's planned
// completion, including the spare-capacity expansions. Slot t of a plan
// covers [now + t·SlotSec, now + (t+1)·SlotSec). The platform exposes this
// for observability; Schedule's decision is exactly slot 0 of these plans.
func (e *ElasticFlow) Plans(now float64, active []*job.Job, g int) map[string]plan.Allocation {
	entries, _ := e.allocate(now, active, g)
	out := make(map[string]plan.Allocation, len(entries))
	for _, p := range entries {
		out[p.j.ID] = p.cur
	}
	return out
}

// allocate runs Algorithm 2 and returns the final per-job entries plus the
// number of spare-GPU rounds the greedy loop adopted.
func (e *ElasticFlow) allocate(now float64, active []*job.Job, g int) ([]*prioJob, int) {
	allocationRuns.Add(1)
	slo, be := splitJobs(active)
	// Lines 2–4: commit each SLO job's minimum satisfactory share, in
	// deadline order, then best-effort jobs on their synthetic horizons —
	// the memoized fill pass (plancache.go). An admitted job whose deadline
	// has become unsatisfiable (accumulated rescale/migration overheads ate
	// its slack, or discretization near the deadline) races to the earliest
	// possible finish instead: its guarantee already slipped, so the
	// least-bad outcome is minimal lateness (§4.4 treats expired deadlines
	// like soft deadlines — still worth finishing, and as soon as
	// possible). The recovery plan stays ahead of best-effort work.
	recs, f := e.fillPass(now, slo, be, "", g)

	entries := make([]*prioJob, 0, len(active))
	late := make([]*prioJob, 0, 2)
	for i, j := range slo {
		r := &recs[i]
		if !r.satisfied {
			late = append(late, &prioJob{j: j, d: r.d, cur: r.earliest, late: true})
			continue
		}
		entries = append(entries, &prioJob{j: j, d: r.d, cur: r.fill})
	}
	entries = append(entries, late...)
	for i, j := range be {
		r := &recs[len(slo)+i]
		entries = append(entries, &prioJob{j: j, d: r.d, cur: r.fill, bestEffort: true})
	}

	// Lines 5–11: initial marginal returns.
	q := &prioQueue{}
	for _, p := range entries {
		f.Uncommit(p.cur)
		ok := e.probe(f, p)
		f.Commit(p.cur)
		if ok {
			heap.Push(q, p)
		}
	}

	// Lines 12–24: greedy adoption with lazy re-evaluation. Each adoption
	// strictly increases committed slot-0 usage, bounding the loop.
	adoptions := 0
	for q.Len() > 0 && f.FreeAt(0) > 0 {
		p := heap.Pop(q).(*prioJob)
		// Re-validate against current usage (other adoptions may have
		// consumed the capacity this probe assumed).
		f.Uncommit(p.cur)
		if !e.probe(f, p) {
			f.Commit(p.cur)
			continue
		}
		if q.Len() > 0 && p.priority < (*q)[0].priority {
			// Stale ordering: someone else is now better; requeue.
			f.Commit(p.cur)
			heap.Push(q, p)
			continue
		}
		// Adopt the probe.
		p.cur = p.alt
		p.won++
		adoptions++
		f.Commit(p.cur)
		// Compute the next probe for this job.
		f.Uncommit(p.cur)
		ok := e.probe(f, p)
		f.Commit(p.cur)
		if ok {
			heap.Push(q, p)
		}
	}
	return entries, adoptions
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
