package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/throughput"
)

// renderDecisions drives a scheduler through a scripted-but-randomized
// workload — arrivals, admissions, progress advances, rescale charges,
// completions, capacity changes, earliest-deadline probes — and renders
// every observable decision into one deterministic transcript string.
func renderDecisions(e *ElasticFlow, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	curves := []throughput.Curve{
		throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2}),
		throughput.MustCurve(map[int]float64{1: 1, 2: 1.8, 4: 3, 8: 4.5}),
		throughput.MustCurve(map[int]float64{1: 1, 2: 1.1, 4: 1.15}),
	}
	var out []byte
	emit := func(format string, args ...interface{}) {
		out = append(out, fmt.Sprintf(format, args...)...)
		out = append(out, '\n')
	}

	var active []*job.Job
	now := 0.0
	g := 16
	nextID := 0
	for step := 0; step < 120; step++ {
		switch rng.Intn(6) {
		case 0, 1: // arrival + admission decision
			nextID++
			j := &job.Job{
				ID:                 fmt.Sprintf("j%03d", nextID),
				TotalIters:         50 + rng.Float64()*500,
				SubmitTime:         now,
				Deadline:           now + 120 + rng.Float64()*3000,
				Class:              job.SLO,
				Curve:              curves[rng.Intn(len(curves))],
				MinGPUs:            1,
				RescaleOverheadSec: 10,
			}
			if rng.Intn(4) == 0 {
				j.Class = job.BestEffort
				j.Deadline = math.Inf(1)
			}
			ok := e.Admit(now, j, active, g)
			emit("admit %s -> %v", j.ID, ok)
			if ok {
				active = append(active, j)
			}
		case 2: // progress advance on a random job
			if len(active) > 0 {
				j := active[rng.Intn(len(active))]
				j.DoneIters += rng.Float64() * 40
				if rng.Intn(3) == 0 {
					j.Rescales++
				}
			}
		case 3: // completion
			if len(active) > 0 {
				i := rng.Intn(len(active))
				emit("complete %s", active[i].ID)
				active = append(active[:i], active[i+1:]...)
			}
		case 4: // capacity change (node event) — engines also invalidate
			g = 8 + rng.Intn(3)*8
			e.InvalidatePlanCache()
			emit("capacity %d", g)
		case 5: // earliest-deadline probe for a hypothetical job
			c := &job.Job{
				ID:                 "probe",
				TotalIters:         200,
				SubmitTime:         now,
				Deadline:           now + 60,
				Class:              job.SLO,
				Curve:              curves[rng.Intn(len(curves))],
				MinGPUs:            1,
				RescaleOverheadSec: 10,
			}
			d, ok := e.EarliestDeadline(now, c, active, g)
			emit("earliest %v %v", d, ok)
		}
		// Every step ends in a scheduling decision, like the sim's
		// admit-then-reschedule cadence.
		dec := e.Schedule(now, active, g)
		ids := make([]string, 0, len(dec.Alloc))
		for id := range dec.Alloc {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			emit("alloc %s=%d", id, dec.Alloc[id])
		}
		emit("wake %v", dec.Wake)
		plans := e.Plans(now, active, g)
		pids := make([]string, 0, len(plans))
		for id := range plans {
			pids = append(pids, id)
		}
		sort.Strings(pids)
		for _, id := range pids {
			p := plans[id]
			emit("plan %s levels=%v fin=%d frac=%v gputime=%v sat=%v",
				id, p.Levels, p.FinishSlot, p.FinishFrac, p.GPUTime, p.Satisfied)
		}
		if rng.Intn(2) == 0 {
			now += float64(rng.Intn(240))
		}
	}
	return string(out)
}

// TestPlanCacheDeterminism is the golden cross-check of the tentpole: the
// cached scheduler and a from-scratch scheduler must produce byte-identical
// decision transcripts over randomized evolving workloads — admissions,
// allocations, full plans (levels, fractional finishes, GPU times), wake-ups
// and earliest-deadline offers all included.
func TestPlanCacheDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cached := New(Options{PowerOfTwo: true})
		cold := New(Options{PowerOfTwo: true, DisablePlanCache: true})
		got := renderDecisions(cached, seed)
		want := renderDecisions(cold, seed)
		if got != want {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			lo := i - 200
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("seed %d: cached and from-scratch transcripts diverge at byte %d:\ncached: …%q\ncold:   …%q",
				seed, i, got[lo:min(i+200, len(got))], want[lo:min(i+200, len(want))])
		}
	}
}

// TestPlanCacheDeterminismUnitMode repeats the cross-check in the
// unit-increment ablation (PowerOfTwo=false), whose fills exercise different
// level sequences and clamping.
func TestPlanCacheDeterminismUnitMode(t *testing.T) {
	cached := New(Options{PowerOfTwo: false})
	cold := New(Options{PowerOfTwo: false, DisablePlanCache: true})
	if got, want := renderDecisions(cached, 42), renderDecisions(cold, 42); got != want {
		t.Fatal("unit-mode cached and from-scratch transcripts diverge")
	}
}

// TestPlanCacheHitsSteadyState asserts the cache actually engages: repeated
// Schedule calls with unchanged jobs must be (near-)pure hits after the
// first, and Admit's second pass must reuse the first pass's prefix.
func TestPlanCacheHitsSteadyState(t *testing.T) {
	e := New(Options{PowerOfTwo: true})
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	var active []*job.Job
	for i := 0; i < 6; i++ {
		active = append(active, &job.Job{
			ID:         fmt.Sprintf("s%d", i),
			TotalIters: 100,
			Deadline:   1e4 + float64(i)*100,
			Class:      job.SLO,
			Curve:      curve,
			MinGPUs:    1,
		})
	}
	e.Schedule(0, active, 16) // warm
	ResetPlanCacheStats()
	for i := 0; i < 10; i++ {
		e.Schedule(0, active, 16)
	}
	hits, misses := PlanCacheStats()
	if misses != 0 || hits != 60 {
		t.Errorf("steady-state Schedule: hits=%d misses=%d, want 60/0", hits, misses)
	}

	// A progress advance on the job with the 3rd-earliest deadline keeps a
	// 2-job prefix hot and refills the rest.
	active[2].DoneIters = 10
	ResetPlanCacheStats()
	e.Schedule(0, active, 16)
	hits, misses = PlanCacheStats()
	if hits != 2 || misses != 4 {
		t.Errorf("after advancing job 2: hits=%d misses=%d, want 2/4", hits, misses)
	}

	// InvalidatePlanCache forces a full recompute.
	e.InvalidatePlanCache()
	ResetPlanCacheStats()
	e.Schedule(0, active, 16)
	hits, misses = PlanCacheStats()
	if hits != 0 || misses != 6 {
		t.Errorf("after invalidation: hits=%d misses=%d, want 0/6", hits, misses)
	}
}
