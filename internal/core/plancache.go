package core

import (
	"math"
	"sync/atomic"

	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/plan"
)

// The plan cache memoizes the deadline-ordered progressive-filling pass that
// both admission control (feasibleSet) and allocation (allocate's
// minimum-satisfactory-share phase) start from. The pass is a fold: jobs are
// filled in a deterministic order against a Filler whose state depends only
// on the jobs already processed, so a pass whose first k jobs are unchanged
// can restore the Filler snapshot taken after job k and fill only the tail.
//
// Correctness rests on three properties:
//   - Every input that can change a job's fill is folded into its
//     fingerprint (mutable planning fields plus the scaling curve's content
//     hash) or into the cache key (time, capacity, generation); scheduler
//     options are immutable after construction.
//   - Snapshots copy the exact committed integers, and resumed passes run
//     the same plan.Filler operations in the same order as a from-scratch
//     pass, so cached and uncached decisions are byte-identical (asserted by
//     TestPlanCacheDeterminism and the sim golden test).
//   - The one asymmetry between the callers — feasibleSet leaves an
//     unsatisfiable *candidate* uncommitted while every other unsatisfiable
//     job commits its FillEarliest recovery plan — is recorded per pass
//     (skipID) and checked during prefix matching.
//
// Fingerprints make invalidation implicit: a job arrival, completion,
// progress advance, or rescale changes the sequence and misses naturally.
// The generation counter (InvalidatePlanCache) is the explicit lever for
// exogenous events — node failures and recoveries — belt and suspenders on
// top of the capacity term already in the key.

// Lifetime tallies of per-job cache outcomes across all schedulers, for
// efbench's hit-rate report. The obs counters carry the same numbers per
// scheduler instance when wired.
var (
	planCacheHits   atomic.Uint64
	planCacheMisses atomic.Uint64
)

// PlanCacheStats returns the process-wide plan-cache tallies: job fills
// reused from a cached prefix vs computed from scratch.
func PlanCacheStats() (hits, misses uint64) {
	return planCacheHits.Load(), planCacheMisses.Load()
}

// ResetPlanCacheStats zeroes the process-wide tallies (benchmark harnesses
// call it between runs).
func ResetPlanCacheStats() {
	planCacheHits.Store(0)
	planCacheMisses.Store(0)
}

// Process-wide scheduler-throughput tallies, alongside the cache tallies:
// admission decisions (Admit calls) and allocation runs (Algorithm 2
// executions, one per Schedule or Plans call). efbench divides them by wall
// time for the decisions/sec and allocations/sec columns of BENCH.json.
var (
	admitDecisions atomic.Uint64
	allocationRuns atomic.Uint64
)

// DecisionStats returns the process-wide admission-decision and
// allocation-run counts.
func DecisionStats() (admits, allocations uint64) {
	return admitDecisions.Load(), allocationRuns.Load()
}

// ResetDecisionStats zeroes the process-wide decision tallies.
func ResetDecisionStats() {
	admitDecisions.Store(0)
	allocationRuns.Store(0)
}

// fillMode is the commit discipline of one position in a fill pass.
type fillMode uint8

const (
	// fillSLO: Fill against the deadline; commit the fill when satisfied,
	// otherwise commit the FillEarliest recovery plan (unless the job is
	// the admission candidate being probed, which commits nothing).
	fillSLO fillMode = iota + 1
	// fillBE: fill the synthetic best-effort horizon and commit as-is.
	fillBE
)

// fillRec is one memoized position of a fill pass.
type fillRec struct {
	id        string
	fp        uint64
	mode      fillMode
	d         plan.Demand
	fill      plan.Allocation // Fill result (the MSS when satisfied)
	earliest  plan.Allocation // committed recovery plan; only for unsatisfied, unskipped fillSLO
	satisfied bool
}

// fillState is one memoized fill pass: the records in processing order plus
// Filler snapshots around them — snaps[i] is the committed usage before
// position i, so len(snaps) == len(recs)+1 and snaps[len(recs)] seeds the
// allocator's greedy phase.
type fillState struct {
	now    float64
	g      int
	gen    uint64
	skipID string // candidate whose unsatisfied fill was not committed ("" = none)
	recs   []fillRec
	snaps  []plan.Snapshot
}

// fingerprintJob hashes everything that can change how a job fills at a
// fixed (now, g): identity, class, deadline and rescale-margin inputs,
// remaining work, worker bounds, and the scaling curve's content.
func fingerprintJob(j *job.Job, mode fillMode) uint64 {
	h := uint64(14695981039346656037) // FNV-1a 64-bit offset basis
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= 1099511628211
		}
	}
	for i := 0; i < len(j.ID); i++ {
		h ^= uint64(j.ID[i])
		h *= 1099511628211
	}
	mix(uint64(mode)<<8 | uint64(j.Class))
	mix(math.Float64bits(j.Deadline))
	mix(math.Float64bits(j.SubmitTime))
	mix(math.Float64bits(j.TotalIters))
	mix(math.Float64bits(j.DoneIters))
	mix(math.Float64bits(j.RescaleOverheadSec))
	mix(math.Float64bits(j.MigrateOverheadSec))
	mix(uint64(j.CheckpointBytes))
	mix(uint64(j.MinGPUs))
	mix(uint64(j.MaxGPUs))
	mix(uint64(j.Rescales))
	mix(j.Curve.Fingerprint())
	return h
}

// InvalidatePlanCache drops every cached fill pass and bumps the cache
// generation. Engines call it on exogenous events the job fingerprints do
// not see — node failures and recoveries. (Job arrival/completion/advance/
// rescale need no call: they change the fingerprints and miss naturally.)
func (e *ElasticFlow) InvalidatePlanCache() {
	e.mu.Lock()
	e.gen++
	e.states[0], e.states[1] = nil, nil
	e.mu.Unlock()
}

// Generation returns the plan-cache generation counter. It only moves on
// InvalidatePlanCache calls; recovery tests assert the restore path bumped
// it so no pre-crash fill pass can serve a post-restore decision.
func (e *ElasticFlow) Generation() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gen
}

// matchPrefix returns the number of leading positions of s that are reusable
// for a query over jobs (slo then be) with fingerprints fps and candidate
// skipCand: fingerprints must match, and for unsatisfied SLO records the
// commit-or-skip decision must be the same on both sides.
func matchPrefix(s *fillState, fps []uint64, slo, be []*job.Job, skipCand string) int {
	limit := len(s.recs)
	if len(fps) < limit {
		limit = len(fps)
	}
	for p := 0; p < limit; p++ {
		r := &s.recs[p]
		var j *job.Job
		if p < len(slo) {
			j = slo[p]
		} else {
			j = be[p-len(slo)]
		}
		if r.fp != fps[p] || r.id != j.ID {
			return p
		}
		if r.mode == fillSLO && !r.satisfied && (r.id == s.skipID) != (r.id == skipCand) {
			return p
		}
	}
	return limit
}

// fillPass runs — or resumes from the longest cached prefix — the ordered
// progressive-filling pass over slo (deadline order) then be (submission
// order) against capacity g at time now. skipCand, when non-empty, names the
// admission candidate whose unsatisfiable recovery plan must not reserve
// capacity. It returns one record per job plus the Filler positioned after
// the last commit, ready for the greedy spare-capacity phase.
func (e *ElasticFlow) fillPass(now float64, slo, be []*job.Job, skipCand string, g int) ([]fillRec, *plan.Filler) {
	n := len(slo) + len(be)
	fps := make([]uint64, n)
	for i, j := range slo {
		fps[i] = fingerprintJob(j, fillSLO)
	}
	for i, j := range be {
		fps[len(slo)+i] = fingerprintJob(j, fillBE)
	}
	f := plan.NewFiller(g, e.opts.SlotSec, e.opts.PowerOfTwo)

	if e.opts.DisablePlanCache {
		st := &fillState{now: now, g: g, skipID: skipCand}
		e.extendFill(st, f, now, slo, be, skipCand, fps, false)
		e.countPlanCache(0, n)
		return st.recs, f
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	var best *fillState
	bestP := -1
	for _, s := range e.states {
		// A cached pass is only valid at the exact decision time it was
		// computed for — bit equality is the requirement, not a hazard.
		//eflint:ignore floatlint cache key demands bit-identical now, nearby times must miss
		if s == nil || s.gen != e.gen || s.g != g || s.now != now {
			continue
		}
		if p := matchPrefix(s, fps, slo, be, skipCand); p > bestP {
			best, bestP = s, p
		}
	}

	if best != nil && bestP == n {
		// Full hit: every position reusable; reposition the filler after
		// the n-th commit. (The cached pass may extend further — a cached
		// allocate pass serves an admission query over its SLO prefix.)
		f.Restore(best.snaps[n])
		if best != e.states[0] {
			e.states[0], e.states[1] = best, e.states[0]
		}
		e.countPlanCache(n, 0)
		return best.recs[:n], f
	}

	st := &fillState{now: now, g: g, gen: e.gen, skipID: skipCand}
	if best != nil && bestP > 0 {
		// Three-index slices: extending the new pass must not clobber the
		// shared backing arrays of the donor state.
		st.recs = best.recs[:bestP:bestP]
		st.snaps = best.snaps[: bestP+1 : bestP+1]
		f.Restore(st.snaps[bestP])
	} else {
		bestP = 0
		st.snaps = []plan.Snapshot{f.Snapshot()}
	}
	e.extendFill(st, f, now, slo, be, skipCand, fps, true)
	e.states[0], e.states[1] = st, e.states[0]
	e.countPlanCache(bestP, n-bestP)
	return st.recs, f
}

// extendFill fills the positions st does not cover yet, committing per the
// fill modes and (when snapshot is set) snapshotting after every job. The
// loop body is the original pre-cache pass verbatim; resumed and
// from-scratch passes therefore execute identical Filler operation
// sequences.
func (e *ElasticFlow) extendFill(st *fillState, f *plan.Filler, now float64, slo, be []*job.Job, skipCand string, fps []uint64, snapshot bool) {
	for i := len(st.recs); i < len(slo)+len(be); i++ {
		var r fillRec
		if i < len(slo) {
			j := slo[i]
			d := e.demand(j, now)
			a := f.Fill(d)
			r = fillRec{id: j.ID, fp: fps[i], mode: fillSLO, d: d, fill: a, satisfied: a.Satisfied}
			switch {
			case a.Satisfied:
				f.Commit(a)
			case j.ID != skipCand:
				// An already-admitted job whose guarantee slipped races
				// to its earliest finish; its recovery plan reserves
				// capacity. The admission candidate's does not.
				r.earliest = f.FillEarliest(d, e.opts.HorizonSlots)
				f.Commit(r.earliest)
			}
		} else {
			j := be[i-len(slo)]
			d := e.demandBestEffort(j)
			a := f.Fill(d)
			f.Commit(a)
			r = fillRec{id: j.ID, fp: fps[i], mode: fillBE, d: d, fill: a, satisfied: a.Satisfied}
		}
		st.recs = append(st.recs, r)
		if snapshot {
			st.snaps = append(st.snaps, f.Snapshot())
		}
	}
}

// countPlanCache records per-job cache outcomes on the process tallies and
// the scheduler's obs counters.
func (e *ElasticFlow) countPlanCache(hits, misses int) {
	if hits > 0 {
		planCacheHits.Add(uint64(hits))
	}
	if misses > 0 {
		planCacheMisses.Add(uint64(misses))
	}
	e.opts.Obs.AddPlanCache(hits, misses)
}
