package core

import "testing"

// TestEpsilonPinned pins the tolerance itself: admission decisions across the
// repo assume one nanosecond of simulated time as the indifference threshold,
// and silently widening (or narrowing) it would change which jobs are
// admitted at the boundary.
func TestEpsilonPinned(t *testing.T) {
	if Epsilon != 1e-9 {
		t.Fatalf("Epsilon = %g, want exactly 1e-9; changing it alters boundary admission decisions", Epsilon)
	}
}

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 1.5, 1.5, true},
		{"within tolerance", 1, 1 + 5e-10, true},
		{"beyond tolerance", 1, 1 + 2e-9, false},
		{"symmetric", 1 + 5e-10, 1, true},
		{"negative values", -2, -2 - 5e-10, true},
		{"clearly different", 1, 2, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("%s: AlmostEqual(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
	// The motivating case: exact == disagrees with AlmostEqual on values
	// that are mathematically equal. Variables force runtime float64
	// arithmetic — as untyped constants, 0.1+0.2 == 0.3 would be folded
	// exactly at compile time.
	x, y, z := 0.1, 0.2, 0.3
	if x+y == z {
		t.Fatal("0.1+0.2 == 0.3 held exactly at runtime; expected IEEE 754 rounding")
	}
	if !AlmostEqual(x+y, z) {
		t.Fatal("AlmostEqual(0.1+0.2, 0.3) = false, want true")
	}
}

func TestAtMost(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"strictly below", 1, 2, true},
		{"equal", 2, 2, true},
		{"above within tolerance", 2 + 5e-10, 2, true},
		{"above beyond tolerance", 2 + 2e-9, 2, false},
		{"well above", 3, 2, false},
	}
	for _, c := range cases {
		if got := AtMost(c.a, c.b); got != c.want {
			t.Errorf("%s: AtMost(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}
