package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/throughput"
)

// linearCurve builds the exactly linear curve T(x) = k·x on 1..g workers.
func linearCurve(k float64, g int) throughput.Curve {
	pts := make(map[int]float64, g)
	for x := 1; x <= g; x++ {
		pts[x] = k * float64(x)
	}
	return throughput.MustCurve(pts)
}

func TestLinearFeasibleBasics(t *testing.T) {
	// One job: M=10, k=1, G=2 → needs 10 GPU·s before D.
	mk := func(deadline float64) []*job.Job {
		return []*job.Job{{
			ID: "a", GlobalBatch: 4, TotalIters: 10, Deadline: deadline,
			Class: job.SLO, Curve: linearCurve(1, 4), MinGPUs: 1, MaxGPUs: 4,
		}}
	}
	if !LinearFeasible(0, mk(5), 2) {
		t.Error("feasible instance rejected (10 GPU·s ≤ 2×5)")
	}
	if LinearFeasible(0, mk(4.9), 2) {
		t.Error("infeasible instance accepted (10 GPU·s > 2×4.9)")
	}
}

func TestLinearFeasiblePrefixCondition(t *testing.T) {
	// Two jobs where the total fits by the later deadline but the earlier
	// prefix does not: Theorem 1's per-prefix check must catch it.
	jobs := []*job.Job{
		{ID: "tight", GlobalBatch: 4, TotalIters: 30, Deadline: 10,
			Class: job.SLO, Curve: linearCurve(1, 4), MinGPUs: 1, MaxGPUs: 4},
		{ID: "loose", GlobalBatch: 4, TotalIters: 1, Deadline: 1000,
			Class: job.SLO, Curve: linearCurve(1, 4), MinGPUs: 1, MaxGPUs: 4},
	}
	// G=2: prefix "tight" needs 30 GPU·s but only 20 exist by t=10.
	if LinearFeasible(0, jobs, 2) {
		t.Error("prefix-infeasible instance accepted")
	}
	// G=4: 30 ≤ 40 and 31 ≤ 4000.
	if !LinearFeasible(0, jobs, 4) {
		t.Error("feasible instance rejected")
	}
}

// TestAdmissionSoundAgainstTheorem1 is the fidelity check of Algorithm 1
// against Theorem 1: on linear curves with slot-aligned deadlines, every
// set progressive filling admits (unit-increment mode, no power-of-two
// rounding) must satisfy Theorem 1's necessary-and-sufficient condition —
// admission is *sound*. (It is deliberately not complete; see
// TestAlg1ConservatismGap.)
func TestAdmissionSoundAgainstTheorem1(t *testing.T) {
	const g = 4
	ef := New(Options{SlotSec: 1, PowerOfTwo: false, SafetyRescales: -1})
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		var jobs []*job.Job
		for i := 0; i < n; i++ {
			deadline := float64(1 + rng.Intn(12)) // slot-aligned
			iters := float64(1 + rng.Intn(int(deadline)*g))
			jobs = append(jobs, &job.Job{
				ID: fmt.Sprintf("j%d", i), GlobalBatch: 8,
				TotalIters: iters, Deadline: deadline, Class: job.SLO,
				Curve: linearCurve(1, g), MinGPUs: 1, MaxGPUs: g,
			})
		}
		// Run admission incrementally, as the platform would.
		var admitted []*job.Job
		for _, j := range jobs {
			if ef.Admit(0, j, admitted, g) {
				admitted = append(admitted, j)
			}
		}
		return LinearFeasible(0, admitted, g)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestAlg1ConservatismGap pins the known (and intended) conservatism of
// Algorithm 1 relative to Theorem 1: progressive filling assigns a constant
// per-job level and reserves the completion slot in full, so an instance
// that is feasible with uneven integral allocations can be rejected.
//
// Instance: G=4, k=1. Job A (M=7, D=3) and job B (M=32, D=10).
// Theorem 1: 7 ≤ 12 and 39 ≤ 40 — feasible (A as (3,2,2), B as
// (1,2,2,4,4,4,4,4,4,4) = 33 ≥ 32).
// Algorithm 1: A's minimum constant level is 3, reserving (3,3,3) = 9
// GPU·slots for 7 iterations; B can then reach at most 31 and is dropped.
func TestAlg1ConservatismGap(t *testing.T) {
	const g = 4
	ef := New(Options{SlotSec: 1, PowerOfTwo: false, SafetyRescales: -1})
	a := &job.Job{ID: "A", GlobalBatch: 8, TotalIters: 7, Deadline: 3,
		Class: job.SLO, Curve: linearCurve(1, g), MinGPUs: 1, MaxGPUs: g}
	b := &job.Job{ID: "B", GlobalBatch: 8, TotalIters: 32, Deadline: 10,
		Class: job.SLO, Curve: linearCurve(1, g), MinGPUs: 1, MaxGPUs: g}
	if !LinearFeasible(0, []*job.Job{a, b}, g) {
		t.Fatal("instance should be Theorem-1 feasible")
	}
	if !ef.Admit(0, a, nil, g) {
		t.Fatal("A alone rejected")
	}
	if ef.Admit(0, b, []*job.Job{a}, g) {
		t.Fatal("expected Algorithm 1 to reject B (constant-level conservatism); if this now passes, the filler became smarter — update this test and EXPERIMENTS.md")
	}
}
