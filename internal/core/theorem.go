package core

import (
	"sort"

	"github.com/elasticflow/elasticflow/internal/job"
)

// LinearFeasible implements Theorem 1 of §4.1: for jobs with linear scaling
// curves T_i(x) = k_i·x, an allocation guaranteeing every deadline exists if
// and only if, with jobs sorted by deadline,
//
//	∀i:  Σ_{j ≤ i} M_j/k_j  ≤  G · (D_i − now).
//
// k_i is read from the curve's unit point (T_i(1)); the function is only
// meaningful for linear curves, and exists both as executable documentation
// of the theorem and as the oracle the core tests compare progressive
// filling against.
func LinearFeasible(now float64, jobs []*job.Job, g int) bool {
	sorted := append([]*job.Job{}, jobs...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i].Deadline < sorted[k].Deadline })
	gpuTime := 0.0
	for _, j := range sorted {
		k := j.Curve.At(1)
		if k <= 0 {
			return false
		}
		gpuTime += j.RemainingIters() / k
		if !AtMost(gpuTime, float64(g)*(j.Deadline-now)) {
			return false
		}
	}
	return true
}
