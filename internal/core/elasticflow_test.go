package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/throughput"
)

// fig3Curve is the motivating example's scaling curve: 1 unit of throughput
// with 1 worker, 1.5 with 2 (Fig. 3(a)).
func fig3Curve() throughput.Curve {
	return throughput.MustCurve(map[int]float64{1: 1, 2: 1.5})
}

func toyScheduler() *ElasticFlow {
	return New(Options{SlotSec: 1, PowerOfTwo: true, SafetyRescales: -1})
}

func newToyJob(id string, curve throughput.Curve, iters, deadline float64) *job.Job {
	return &job.Job{
		ID:          id,
		GlobalBatch: 8,
		TotalIters:  iters,
		Deadline:    deadline,
		Class:       job.SLO,
		Curve:       curve,
		MinGPUs:     1,
		MaxGPUs:     curve.MaxWorkers(),
		State:       job.Admitted,
	}
}

// TestFig3BothJobsMeetDeadlines reproduces Fig. 3(c): jobs A (deadline 3)
// and B (deadline 3.5), each 3 iterations on the Fig. 3 curve, both fit on
// 2 GPUs with one worker each — the allocation EDF misses.
func TestFig3BothJobsMeetDeadlines(t *testing.T) {
	ef := toyScheduler()
	a := newToyJob("A", fig3Curve(), 3, 3)
	b := newToyJob("B", fig3Curve(), 3, 3.5)

	if !ef.Admit(0, a, nil, 2) {
		t.Fatal("job A rejected")
	}
	if !ef.Admit(0, b, []*job.Job{a}, 2) {
		t.Fatal("job B rejected: ElasticFlow should satisfy both deadlines")
	}
	dec := ef.Schedule(0, []*job.Job{a, b}, 2)
	if dec.Alloc["A"] != 1 || dec.Alloc["B"] != 1 {
		t.Errorf("allocation = %v want one worker each (Fig. 3(c))", dec.Alloc)
	}
}

// TestFig3ThirdJobRejected: with both jobs admitted the cluster is exactly
// full through time 3; a third identical job with deadline 3 must be dropped.
func TestFig3ThirdJobRejected(t *testing.T) {
	ef := toyScheduler()
	a := newToyJob("A", fig3Curve(), 3, 3)
	b := newToyJob("B", fig3Curve(), 3, 3.5)
	c := newToyJob("C", fig3Curve(), 3, 3)
	if !ef.Admit(0, a, nil, 2) || !ef.Admit(0, b, []*job.Job{a}, 2) {
		t.Fatal("setup jobs rejected")
	}
	if ef.Admit(0, c, []*job.Job{a, b}, 2) {
		t.Error("job C admitted although no allocation can satisfy all three deadlines")
	}
}

// TestFig4MSSWithContention reproduces §4.1's admission walk-through: job C
// (deadline 2, 3 iterations, Fig. 4(a) curve) in a 4-GPU cluster where jobs
// A and B consume 3 GPUs in slot 0 needs the plan [1, 4].
func TestFig4MSSWithContention(t *testing.T) {
	ef := toyScheduler()
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	// A and B together: model them as jobs with deadline 1 needing 3 GPUs
	// in slot 0. Give A 1 GPU × 1 slot (1 iter at tput 1) and B 2 GPUs ×
	// 1 slot (1.5 iters at tput 1.5).
	a := newToyJob("A", curve, 1, 1)
	b := newToyJob("B", curve, 1.5, 1)
	b.MinGPUs = 2
	c := newToyJob("C", curve, 3, 2)

	if !ef.Admit(0, c, []*job.Job{a, b}, 4) {
		t.Fatal("job C rejected although satisfiable")
	}
	mss := ef.MinimumSatisfactoryShare(0, []*job.Job{a, b, c}, 4)
	got := mss["C"]
	if !got.Satisfied {
		t.Fatalf("C unsatisfied: %+v", got)
	}
	if got.GPUsAt(0) != 1 || got.GPUsAt(1) != 4 {
		t.Errorf("C plan = %v want [1 4] (§4.1 example)", got.Levels)
	}
}

// TestAdmitRespectsExistingDeadlines: a new job that would break an admitted
// job's guarantee is dropped even when its own deadline is satisfiable.
func TestAdmitRespectsExistingDeadlines(t *testing.T) {
	ef := toyScheduler()
	curve := fig3Curve()
	a := newToyJob("A", curve, 4, 4)
	if !ef.Admit(0, a, nil, 1) {
		t.Fatal("A rejected on empty cluster")
	}
	// B alone would fit (deadline 2, 2 iters, 1 GPU), but admitting it
	// starves A (A needs all 4 slots on the single GPU).
	bJob := newToyJob("B", curve, 2, 2)
	if ef.Admit(0, bJob, []*job.Job{a}, 1) {
		t.Error("B admitted although it violates A's guarantee")
	}
}

func TestAdmitBestEffortAlways(t *testing.T) {
	ef := toyScheduler()
	be := newToyJob("BE", fig3Curve(), 1e9, math.Inf(1))
	be.Class = job.BestEffort
	if !ef.Admit(0, be, nil, 1) {
		t.Error("best-effort job rejected")
	}
}

func TestQuotaPolicyHook(t *testing.T) {
	denied := 0
	ef := New(Options{SlotSec: 1, SafetyRescales: -1, PowerOfTwo: true, Quota: func(j *job.Job) bool {
		denied++
		return j.ID != "greedy-user-job"
	}})
	ok := newToyJob("ok", fig3Curve(), 1, 10)
	bad := newToyJob("greedy-user-job", fig3Curve(), 1, 10)
	if !ef.Admit(0, ok, nil, 4) {
		t.Error("quota rejected allowed job")
	}
	if ef.Admit(0, bad, nil, 4) {
		t.Error("quota admitted denied job")
	}
	if denied != 2 {
		t.Errorf("quota consulted %d times want 2", denied)
	}
}

// TestScheduleWorkConservation: leftover GPUs flow to admitted jobs as long
// as scaling up still helps (constraint (7) of §4.2).
func TestScheduleWorkConservation(t *testing.T) {
	ef := toyScheduler()
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.8, 4: 3, 8: 4.5})
	a := newToyJob("A", curve, 10, 100)
	dec := ef.Schedule(0, []*job.Job{a}, 8)
	// MSS is 1 GPU, but the spare 7 GPUs should raise A to its maximum
	// useful count since each step finishes it earlier.
	if dec.Alloc["A"] != 8 {
		t.Errorf("alloc=%d want 8 (all spare GPUs go to the only job)", dec.Alloc["A"])
	}
}

// TestScheduleMarginalReturnOrdering: spare capacity goes to the job whose
// scaling curve wastes the least GPU time, not simply the earliest deadline.
func TestScheduleMarginalReturnOrdering(t *testing.T) {
	ef := toyScheduler()
	// efficientCurve scales almost linearly; poorCurve saturates.
	efficientCurve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.95, 4: 3.8})
	poorCurve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.1, 4: 1.15})
	a := newToyJob("A", poorCurve, 20, 40)
	b := newToyJob("B", efficientCurve, 20, 40)
	// Only one spare GPU exists (G=3, two MSS of 1): it must go to the
	// efficient job, whose marginal step wastes the least GPU time.
	dec := ef.Schedule(0, []*job.Job{a, b}, 3)
	if dec.Alloc["A"] != 1 || dec.Alloc["B"] != 2 {
		t.Errorf("alloc=%v want A:1 B:2 — the spare GPU goes to the efficient job", dec.Alloc)
	}
}

// TestScheduleDeadlinesStillGuaranteed: expanding one job must never consume
// capacity another admitted job's MSS needs.
func TestScheduleDeadlinesStillGuaranteed(t *testing.T) {
	ef := toyScheduler()
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	// A has a loose deadline; B is tight and needs 2 GPUs in both slots.
	a := newToyJob("A", curve, 8, 16)
	b := newToyJob("B", curve, 3, 2)
	dec := ef.Schedule(0, []*job.Job{a, b}, 4)
	if dec.Alloc["B"] < 2 {
		t.Errorf("B got %d GPUs; its deadline requires 2", dec.Alloc["B"])
	}
	// Simulate one slot and re-check B finishes by its deadline.
	bt := b.Curve.At(dec.Alloc["B"])
	if remaining := b.TotalIters - bt; remaining > curve.At(4)*1 {
		t.Errorf("B cannot finish: %.2f left, max %.2f per slot", remaining, curve.At(4))
	}
}

// TestScheduleBestEffortGetsLeftovers: best-effort jobs receive capacity
// only after SLO guarantees, but do receive it when available (§4.4).
func TestScheduleBestEffortGetsLeftovers(t *testing.T) {
	ef := toyScheduler()
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	slo := newToyJob("S", curve, 3, 2) // needs 2 GPUs both slots
	be := newToyJob("E", curve, 100, math.Inf(1))
	be.Class = job.BestEffort
	dec := ef.Schedule(0, []*job.Job{slo, be}, 4)
	if dec.Alloc["S"] < 2 {
		t.Errorf("SLO job got %d GPUs, deadline needs 2", dec.Alloc["S"])
	}
	if dec.Alloc["E"] == 0 {
		t.Error("best-effort job starved although GPUs are free")
	}
	if dec.Alloc["S"]+dec.Alloc["E"] > 4 {
		t.Errorf("overcommitted: %v", dec.Alloc)
	}
}

// TestScheduleWakeAtPlanChange: when a plan changes level at a future slot,
// the decision carries a wake-up at that boundary.
func TestScheduleWakeAtPlanChange(t *testing.T) {
	ef := toyScheduler()
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	// Recreate Fig. 4(c): C gets [1,4] because A+B hold 3 GPUs in slot 0.
	a := newToyJob("A", curve, 1, 1)
	b := newToyJob("B", curve, 1.5, 1)
	b.MinGPUs = 2
	c := newToyJob("C", curve, 3, 2)
	dec := ef.Schedule(0, []*job.Job{a, b, c}, 4)
	if dec.Wake <= 0 || dec.Wake > 1 {
		t.Errorf("wake=%v want a wake-up at slot boundary 1", dec.Wake)
	}
}

// TestGreedyMatchesBruteForce cross-checks Theorem 2 on small instances: the
// greedy allocation's total GPU time equals the optimum found by exhaustive
// search over constant-level plans, for jobs with concave curves and loose
// deadlines where constant plans are optimal.
func TestGreedyMatchesBruteForce(t *testing.T) {
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.8, 4: 3.2})
	const g = 4
	for _, iters := range []float64{4, 6, 10} {
		ef := toyScheduler()
		a := newToyJob("A", curve, iters, 1000)
		b := newToyJob("B", curve, iters, 1000)
		dec := ef.Schedule(0, []*job.Job{a, b}, g)
		sumAlloc := dec.Alloc["A"] + dec.Alloc["B"]
		if sumAlloc > g {
			t.Fatalf("overcommit: %v", dec.Alloc)
		}
		// Work conservation: with two identical concave jobs and loose
		// deadlines, all GPUs should be in use (2+2).
		if sumAlloc != g {
			t.Errorf("iters=%v: allocated %d of %d GPUs: %v", iters, sumAlloc, g, dec.Alloc)
		}
		if dec.Alloc["A"] != dec.Alloc["B"] {
			t.Errorf("iters=%v: identical jobs got unequal allocations %v", iters, dec.Alloc)
		}
	}
}

// TestAdmissionFillsByDeadlineOrder: admission must consider jobs in
// deadline order; a feasible set must stay feasible regardless of the order
// jobs arrive in.
func TestAdmissionFillsByDeadlineOrder(t *testing.T) {
	curve := fig3Curve()
	mk := func() []*job.Job {
		return []*job.Job{
			newToyJob("late", curve, 3, 6),
			newToyJob("early", curve, 2, 2),
		}
	}
	// Arrival order 1: late first.
	ef := toyScheduler()
	jobs := mk()
	if !ef.Admit(0, jobs[0], nil, 1) {
		t.Fatal("late rejected on empty cluster")
	}
	if !ef.Admit(0, jobs[1], jobs[:1], 1) {
		t.Error("early rejected although EDF-order filling fits both")
	}
	// Arrival order 2: early first.
	ef2 := toyScheduler()
	jobs2 := mk()
	if !ef2.Admit(0, jobs2[1], nil, 1) {
		t.Fatal("early rejected on empty cluster")
	}
	if !ef2.Admit(0, jobs2[0], jobs2[1:2], 1) {
		t.Error("late rejected although EDF-order filling fits both")
	}
}

// TestScheduleDeterministic: identical inputs yield identical decisions.
func TestScheduleDeterministic(t *testing.T) {
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.7, 4: 2.6, 8: 3.4})
	mk := func() []*job.Job {
		var js []*job.Job
		for i := 0; i < 6; i++ {
			j := newToyJob(fmt.Sprintf("j%d", i), curve, float64(10+i*3), float64(20+i*5))
			js = append(js, j)
		}
		return js
	}
	ef := toyScheduler()
	d1 := ef.Schedule(0, mk(), 8)
	d2 := ef.Schedule(0, mk(), 8)
	for id, g := range d1.Alloc {
		if d2.Alloc[id] != g {
			t.Errorf("non-deterministic allocation for %s: %d vs %d", id, g, d2.Alloc[id])
		}
	}
	if d1.Wake != d2.Wake {
		t.Errorf("non-deterministic wake: %v vs %v", d1.Wake, d2.Wake)
	}
}

// TestScheduleNeverOvercommits across a few random-ish configurations.
func TestScheduleNeverOvercommits(t *testing.T) {
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.8, 4: 3, 8: 4.2, 16: 5})
	for n := 1; n <= 12; n++ {
		var jobs []*job.Job
		for i := 0; i < n; i++ {
			j := newToyJob(fmt.Sprintf("j%d", i), curve, float64(5+7*i%23), float64(10+3*i))
			if i%3 == 0 {
				j.Class = job.BestEffort
				j.Deadline = math.Inf(1)
			}
			jobs = append(jobs, j)
		}
		ef := toyScheduler()
		dec := ef.Schedule(0, jobs, 16)
		total := 0
		for _, g := range dec.Alloc {
			total += g
		}
		if total > 16 {
			t.Errorf("n=%d: overcommitted %d GPUs: %v", n, total, dec.Alloc)
		}
	}
}

// TestDemotedJobStillRuns: an admitted SLO job whose deadline has become
// unsatisfiable keeps running best-effort rather than being starved.
func TestDemotedJobStillRuns(t *testing.T) {
	ef := toyScheduler()
	late := newToyJob("late", fig3Curve(), 100, 2) // cannot finish by 2
	dec := ef.Schedule(0, []*job.Job{late}, 4)
	if dec.Alloc["late"] == 0 {
		t.Error("unsatisfiable job starved; should run best-effort (§4.4)")
	}
}

// TestReserveGPUsReducesAdmission: the §4.4 failure reserve withholds
// capacity from admission control.
func TestReserveGPUsReducesAdmission(t *testing.T) {
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	mk := func(id string) *job.Job {
		return &job.Job{ID: id, GlobalBatch: 8, TotalIters: 8, Deadline: 4, Class: job.SLO,
			Curve: curve, MinGPUs: 1, MaxGPUs: 4}
	}
	plain := New(Options{SlotSec: 1, PowerOfTwo: true, SafetyRescales: -1})
	reserved := New(Options{SlotSec: 1, PowerOfTwo: true, SafetyRescales: -1, ReserveGPUs: 2})
	// The job needs 2 iters/slot for 4 slots, i.e. all 4 GPUs.
	if !plain.Admit(0, mk("a"), nil, 4) {
		t.Error("plain scheduler rejected a feasible job")
	}
	if reserved.Admit(0, mk("a"), nil, 4) {
		t.Error("reserved scheduler admitted a job that needs the reserve")
	}
}

// TestSoftDeadlineScheduledBestEffort: soft-deadline jobs are always
// admitted and scheduled like best-effort work — they never reserve MSS
// capacity that would block an SLO guarantee (§4.4).
func TestSoftDeadlineScheduledBestEffort(t *testing.T) {
	ef := toyScheduler()
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	soft := newToyJob("soft", curve, 1000, 1) // hopeless deadline
	soft.Class = job.SoftDeadline
	if !ef.Admit(0, soft, nil, 4) {
		t.Fatal("soft-deadline job rejected; must always be admitted")
	}
	// A tight SLO job arriving later still gets its full guarantee.
	slo := newToyJob("slo", curve, 3, 2) // needs 2 GPUs both slots
	if !ef.Admit(0, slo, []*job.Job{soft}, 4) {
		t.Fatal("SLO job rejected because of a soft-deadline job")
	}
	dec := ef.Schedule(0, []*job.Job{soft, slo}, 4)
	if dec.Alloc["slo"] < 2 {
		t.Errorf("SLO job got %d GPUs; soft job must not displace its MSS", dec.Alloc["slo"])
	}
	if dec.Alloc["soft"] == 0 {
		t.Error("soft-deadline job starved although capacity remains")
	}
}

// TestWorkConservationProperty is constraint (7) of §4.2 as a randomized
// property: after Schedule, either every GPU is allocated, or each job left
// below its ceiling cannot take its next step — because the step does not
// fit in the free GPUs, or because it would not finish the job any earlier.
func TestWorkConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		g := 4 << rng.Intn(3) // 4, 8, 16
		n := 1 + rng.Intn(6)
		var jobs []*job.Job
		for i := 0; i < n; i++ {
			// Random concave curve over powers of two.
			pts := map[int]float64{}
			tput := 1.0
			gain := 0.6 + 0.35*rng.Float64()
			for w := 1; w <= g; w *= 2 {
				pts[w] = tput
				tput += tput * gain
				gain *= 0.5 + 0.4*rng.Float64()
			}
			j := newToyJob(fmt.Sprintf("w%d", i), throughput.MustCurve(pts), 5+rng.Float64()*40, 10+rng.Float64()*80)
			jobs = append(jobs, j)
		}
		ef := toyScheduler()
		dec := ef.Schedule(0, jobs, g)
		used := 0
		for _, a := range dec.Alloc {
			used += a
		}
		if used > g {
			t.Fatalf("trial %d: overcommitted %d/%d", trial, used, g)
		}
		if used == g {
			continue // fully allocated: conserved
		}
		free := g - used
		for _, j := range jobs {
			cur := dec.Alloc[j.ID]
			next := cur * 2
			if cur == 0 {
				next = j.MinGPUs
			}
			if next > j.MaxGPUs || next-cur > free {
				continue // step infeasible: fine
			}
			// The step fits; it must not improve the finish time
			// (otherwise the greedy should have taken it).
			curT := j.TimeToFinish(cur)
			nextT := j.TimeToFinish(next)
			if nextT < curT-1e-9 {
				t.Errorf("trial %d: job %s could still improve (%d→%d GPUs, %.2f→%.2f) with %d free",
					trial, j.ID, cur, next, curT, nextT, free)
			}
		}
	}
}

// TestEarliestDeadline: the suggested deadline is itself admissible and one
// slot earlier is not.
func TestEarliestDeadline(t *testing.T) {
	ef := toyScheduler()
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2})
	// Background job holds 2 of 4 GPUs for 10 slots.
	bg := newToyJob("bg", curve, 15, 10)
	bg.MinGPUs = 2
	bg.MaxGPUs = 2
	cand := newToyJob("cand", curve, 20, 1) // requested deadline hopeless
	if ef.Admit(0, cand, []*job.Job{bg}, 4) {
		t.Fatal("hopeless deadline admitted")
	}
	dl, ok := ef.EarliestDeadline(0, cand, []*job.Job{bg}, 4)
	if !ok {
		t.Fatal("no feasible deadline found")
	}
	// The suggestion must be admissible…
	c := *cand
	c.Deadline = dl
	if !ef.Admit(0, &c, []*job.Job{bg}, 4) {
		t.Errorf("suggested deadline %.1f not admissible", dl)
	}
	// …and tight: one slot earlier must fail.
	c2 := *cand
	c2.Deadline = dl - 1.0001 // one toy slot earlier
	if ef.Admit(0, &c2, []*job.Job{bg}, 4) {
		t.Errorf("deadline %.1f admissible; suggestion %.1f not minimal", c2.Deadline, dl)
	}
	// Sanity: the job needs ≥10 iterations of headroom with 2 GPUs busy:
	// 20 iters at tput 1.5 (2 GPUs) ≈ 13.3 slots minimum.
	if dl < 13 || dl > 25 {
		t.Errorf("suggested deadline %.1f outside plausible range", dl)
	}
	// An impossible job (needs more than the horizon) reports !ok.
	hopeless := newToyJob("x", curve, 1e12, 1)
	if _, ok := ef.EarliestDeadline(0, hopeless, nil, 4); ok {
		t.Error("infeasible job got a deadline suggestion")
	}
}
