// This file is an external test package so it can drive admission control
// end-to-end through the simulator (sim imports core; an in-package test
// would cycle).
package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/sim"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// FuzzAdmissionControl fuzzes the §3.1 performance guarantee: for any
// workload the fuzzer derives, no job that admission control accepts may
// miss its deadline. The fuzz inputs seed a deterministic workload
// generator, so every crash reproduces from its corpus entry alone.
func FuzzAdmissionControl(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(2))
	f.Add(int64(42), uint8(12), uint8(0))
	f.Add(int64(-7), uint8(3), uint8(9))
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.8, 4: 3.1, 8: 4.8, 16: 6.0})
	f.Fuzz(func(t *testing.T, seed int64, count, tightness uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(count)%12
		// tightness skews deadlines toward the tight end so the fuzzer
		// exercises the reject path, not just trivially loose admissions.
		// The floor stays at the platform's documented operating envelope
		// (deadline slack ≥ 0.5× the 1-GPU duration, the same floor the
		// guarantee property test uses): below it, slot quantization plus
		// rescale overheads beyond the SafetyRescales budget can exceed the
		// admission margin and an admitted job can miss — a known
		// limitation recorded under ROADMAP.md "Open items".
		slackScale := 0.5 + float64(tightness%10)*0.2
		var jobs []*job.Job
		clock := 0.0
		for i := 0; i < n; i++ {
			clock += rng.Float64() * 600
			dur := 300 + rng.Float64()*3000 // seconds at 1 GPU
			lambda := 0.5 + slackScale*rng.Float64()
			jobs = append(jobs, &job.Job{
				ID:                 fmt.Sprintf("f%d", i),
				GlobalBatch:        64,
				TotalIters:         dur, // tput(1)=1 ⇒ iters = seconds
				SubmitTime:         clock,
				Deadline:           clock + lambda*dur,
				Class:              job.SLO,
				Curve:              curve,
				MinGPUs:            1,
				MaxGPUs:            16,
				RescaleOverheadSec: 5 + rng.Float64()*20,
			})
		}
		ef := core.New(core.Options{SlotSec: 30, PowerOfTwo: true})
		res, err := sim.Run(sim.Config{
			Topology:  topology.Config{Servers: 2, GPUsPerServer: 8},
			Scheduler: ef,
		}, jobs, "fuzz-admission")
		if err != nil {
			t.Fatalf("seed %d: sim failed: %v", seed, err)
		}
		for _, jr := range res.Jobs {
			if !jr.Dropped && !jr.Met {
				t.Fatalf("seed %d: admitted job %s violated its deadline (completion %.0f > deadline %.0f, %d rescales)",
					seed, jr.ID, jr.Completion, jr.Deadline, jr.Rescales)
			}
			// The SafetyRescales budget (default 5) bounds *voluntary*
			// expansions: once a job has spent it, the allocator stops
			// volunteering it for more (core.probe). Mandatory replans —
			// shrinks forced by each other job's arrival or departure —
			// are outside the budget, hence the +n allowance.
			if !jr.Dropped && jr.Rescales > 5+n {
				t.Fatalf("seed %d: job %s charged %d rescales, budget 5 + %d churn allowance",
					seed, jr.ID, jr.Rescales, n)
			}
		}
	})
}
