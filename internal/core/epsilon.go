package core

import "math"

// Epsilon is the shared absolute tolerance for deadline and GPU-time
// arithmetic. Simulated times in this repo are seconds accumulated by
// repeated addition of slot-sized increments, so two quantities that are
// mathematically equal can drift apart by a few ULPs; one nanosecond of
// simulated time is far below anything the scheduler resolves, and far above
// accumulated rounding error at realistic magnitudes. Exact == / != on
// computed float64s is rejected by eflint's floatlint analyzer — compare
// through AlmostEqual / AtMost instead, or restructure the comparison to be
// ordered (< / >).
const Epsilon = 1e-9

// AlmostEqual reports whether a and b are equal up to Epsilon. Use it
// wherever a scheduling decision would otherwise hinge on exact binary
// equality of computed values (remaining iterations hitting zero, a finish
// time landing exactly on a deadline).
func AlmostEqual(a, b float64) bool {
	return math.Abs(a-b) <= Epsilon
}

// AtMost reports a ≤ b up to Epsilon: a exceeds b only if it does so by more
// than the tolerance. This is the comparison shape of every deadline check
// ("does the required GPU time fit in the time remaining"), where rounding
// must never cause a spurious infeasibility verdict.
func AtMost(a, b float64) bool {
	return a <= b+Epsilon
}
