// Package policy implements the operator-side admission policies sketched in
// §4.4 ("Malicious users and admission control policies"): per-user quotas
// and deadline-sensitive pricing, applied after feasibility but before the
// final admit (the paper's "extra policy or charge the user before line 9 of
// Algorithm 1"). Policies compose with Chain and plug into
// core.Options.Quota.
package policy

import (
	"sync"

	"github.com/elasticflow/elasticflow/internal/job"
)

// Policy is one admission policy: Allows inspects a feasible job; Commit
// records the admission's effect (counting a submission, charging a price).
// Separating the two lets Chain reject on any policy without half-applying
// the others.
type Policy interface {
	Allows(j *job.Job) bool
	Commit(j *job.Job)
}

// Chain combines policies into a core.Options.Quota function: the job is
// admitted only if every policy allows it, and effects commit atomically.
func Chain(policies ...Policy) func(*job.Job) bool {
	return func(j *job.Job) bool {
		for _, p := range policies {
			if !p.Allows(j) {
				return false
			}
		}
		for _, p := range policies {
			p.Commit(j)
		}
		return true
	}
}

// UserQuota caps how many jobs one user may submit per sliding window —
// §4.4's "set a maximum number of jobs that can be submitted by each user
// per day". Jobs without a user are exempt.
type UserQuota struct {
	// MaxJobs is the per-user cap within the window.
	MaxJobs int
	// WindowSec is the sliding window length (e.g. 86400 for daily).
	WindowSec float64

	mu        sync.Mutex
	submitted map[string][]float64 // user → admitted submit times. guarded by mu
}

// NewUserQuota creates a quota of maxJobs per windowSec per user.
func NewUserQuota(maxJobs int, windowSec float64) *UserQuota {
	return &UserQuota{MaxJobs: maxJobs, WindowSec: windowSec, submitted: make(map[string][]float64)}
}

func (q *UserQuota) pruneLocked(user string, now float64) {
	times := q.submitted[user]
	keep := times[:0]
	for _, t := range times {
		if t > now-q.WindowSec {
			keep = append(keep, t)
		}
	}
	q.submitted[user] = keep
}

// Allows implements Policy.
func (q *UserQuota) Allows(j *job.Job) bool {
	if j.User == "" {
		return true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pruneLocked(j.User, j.SubmitTime)
	return len(q.submitted[j.User]) < q.MaxJobs
}

// Commit implements Policy.
func (q *UserQuota) Commit(j *job.Job) {
	if j.User == "" {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.submitted[j.User] = append(q.submitted[j.User], j.SubmitTime)
}

// Count returns the user's charged submissions within the window ending now.
func (q *UserQuota) Count(user string, now float64) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pruneLocked(user, now)
	return len(q.submitted[user])
}

// Pricing estimates what a job costs: its minimal GPU time at the base rate,
// multiplied by an urgency premium when the deadline forces the job to run
// faster than its most efficient (minimum) worker count — §4.4's "the cost
// depends on the job size and the deadline".
type Pricing struct {
	// RatePerGPUHour is the base price of one GPU for one hour.
	RatePerGPUHour float64
	// UrgencyPremium scales the surcharge for tight deadlines: a job that
	// must run u× faster than its minimum level pays
	// 1 + UrgencyPremium·(u−1) times the base price.
	UrgencyPremium float64
}

// Estimate returns the job's price. Best-effort jobs pay the base price.
func (p Pricing) Estimate(j *job.Job) float64 {
	minG := j.Curve.MinWorkers()
	minTput := j.Curve.At(minG)
	if minTput <= 0 {
		return 0
	}
	gpuHours := j.TotalIters / minTput * float64(minG) / 3600
	price := p.RatePerGPUHour * gpuHours
	if j.HasDeadline() {
		slack := j.Deadline - j.SubmitTime
		if slack > 0 {
			urgency := (j.TotalIters / slack) / minTput
			if urgency > 1 {
				price *= 1 + p.UrgencyPremium*(urgency-1)
			}
		}
	}
	return price
}

// Budget grants users balances and charges the estimated price at
// admission. Jobs whose user cannot afford the price are rejected.
type Budget struct {
	Pricing Pricing

	mu      sync.Mutex
	balance map[string]float64 // user → remaining funds. guarded by mu
}

// NewBudget creates an empty ledger with the given pricing.
func NewBudget(p Pricing) *Budget {
	return &Budget{Pricing: p, balance: make(map[string]float64)}
}

// Grant adds funds to a user's balance.
func (b *Budget) Grant(user string, amount float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.balance[user] += amount
}

// Balance returns a user's remaining funds.
func (b *Budget) Balance(user string) float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance[user]
}

// Allows implements Policy. Jobs without a user are exempt.
func (b *Budget) Allows(j *job.Job) bool {
	if j.User == "" {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.balance[j.User] >= b.Pricing.Estimate(j)
}

// Commit implements Policy: charge the price.
func (b *Budget) Commit(j *job.Job) {
	if j.User == "" {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.balance[j.User] -= b.Pricing.Estimate(j)
}
