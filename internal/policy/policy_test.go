package policy

import (
	"math"
	"testing"

	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/throughput"
)

func polJob(id, user string, submit, deadline float64) *job.Job {
	return &job.Job{
		ID:          id,
		User:        user,
		GlobalBatch: 8,
		TotalIters:  3600, // 1 GPU-hour at tput 1
		SubmitTime:  submit,
		Deadline:    deadline,
		Class:       job.SLO,
		Curve:       throughput.MustCurve(map[int]float64{1: 1, 2: 1.5, 4: 2}),
		MinGPUs:     1,
		MaxGPUs:     4,
	}
}

func TestUserQuotaWindow(t *testing.T) {
	q := NewUserQuota(2, 3600)
	chain := Chain(q)
	for i := 0; i < 2; i++ {
		j := polJob("a", "alice", float64(i*100), 1e6)
		if !chain(j) {
			t.Fatalf("submission %d rejected under quota 2", i)
		}
	}
	if chain(polJob("a3", "alice", 300, 1e6)) {
		t.Error("third submission within window admitted")
	}
	// Other users are unaffected.
	if !chain(polJob("b1", "bob", 300, 1e6)) {
		t.Error("unrelated user rejected")
	}
	// The window slides: an hour later alice can submit again.
	if !chain(polJob("a4", "alice", 4000, 1e6)) {
		t.Error("submission after window expiry rejected")
	}
	if got := q.Count("alice", 4000); got != 1 {
		t.Errorf("Count=%d want 1 (old entries pruned)", got)
	}
	// Anonymous jobs are exempt.
	for i := 0; i < 5; i++ {
		if !chain(polJob("anon", "", 100, 1e6)) {
			t.Error("anonymous job rejected by user quota")
		}
	}
}

func TestPricingUrgencyPremium(t *testing.T) {
	p := Pricing{RatePerGPUHour: 10, UrgencyPremium: 1}
	// Loose deadline: base price = 1 GPU-hour × 10.
	loose := polJob("l", "u", 0, 1e6)
	if got := p.Estimate(loose); math.Abs(got-10) > 1e-9 {
		t.Errorf("loose price=%v want 10", got)
	}
	// Deadline of 1800 s forces 2× the minimum throughput: premium doubles
	// the price (urgency 2 ⇒ multiplier 1+1·(2−1) = 2).
	tight := polJob("t", "u", 0, 1800)
	if got := p.Estimate(tight); math.Abs(got-20) > 1e-9 {
		t.Errorf("tight price=%v want 20", got)
	}
	be := polJob("b", "u", 0, 1e6)
	be.Class = job.BestEffort
	be.Deadline = math.Inf(1)
	if got := p.Estimate(be); math.Abs(got-10) > 1e-9 {
		t.Errorf("best-effort price=%v want base 10", got)
	}
}

func TestBudgetChargesAndRejects(t *testing.T) {
	b := NewBudget(Pricing{RatePerGPUHour: 10})
	b.Grant("carol", 15)
	chain := Chain(b)
	if !chain(polJob("c1", "carol", 0, 1e6)) { // costs 10
		t.Fatal("affordable job rejected")
	}
	if got := b.Balance("carol"); math.Abs(got-5) > 1e-9 {
		t.Errorf("balance=%v want 5", got)
	}
	if chain(polJob("c2", "carol", 0, 1e6)) { // costs 10 > 5
		t.Error("unaffordable job admitted")
	}
	if !chain(polJob("anon", "", 0, 1e6)) {
		t.Error("anonymous job rejected by budget")
	}
}

// TestChainAtomicity: when a later policy rejects, earlier policies must not
// have committed their effects.
func TestChainAtomicity(t *testing.T) {
	q := NewUserQuota(5, 1e6)
	b := NewBudget(Pricing{RatePerGPUHour: 10})
	// dave has no funds: budget rejects, quota must not count.
	chain := Chain(q, b)
	if chain(polJob("d", "dave", 0, 1e6)) {
		t.Fatal("broke job admitted")
	}
	if got := q.Count("dave", 0); got != 0 {
		t.Errorf("quota counted a rejected submission: %d", got)
	}
}

// TestPolicyPlugsIntoAdmission: the chain runs as core.Options.Quota after
// feasibility, before the final admit (§4.4's placement in Algorithm 1).
func TestPolicyPlugsIntoAdmission(t *testing.T) {
	q := NewUserQuota(1, 1e6)
	ef := core.New(core.Options{SlotSec: 60, PowerOfTwo: true, SafetyRescales: -1, Quota: Chain(q)})
	j1 := polJob("p1", "erin", 0, 1e6)
	if !ef.Admit(0, j1, nil, 4) {
		t.Fatal("first job rejected")
	}
	j2 := polJob("p2", "erin", 10, 1e6)
	if ef.Admit(10, j2, []*job.Job{j1}, 4) {
		t.Error("quota-violating job admitted")
	}
	// An infeasible job must not consume quota even though it was the
	// user's first: feasibility runs before the policy.
	q2 := NewUserQuota(1, 1e6)
	ef2 := core.New(core.Options{SlotSec: 60, PowerOfTwo: true, SafetyRescales: -1, Quota: Chain(q2)})
	hopeless := polJob("h", "frank", 0, 60) // 3600 iters in 60s: impossible
	if ef2.Admit(0, hopeless, nil, 4) {
		t.Fatal("infeasible job admitted")
	}
	if got := q2.Count("frank", 0); got != 0 {
		t.Errorf("infeasible job consumed quota: %d", got)
	}
}
