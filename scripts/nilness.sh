#!/bin/sh
# Runs the golang.org/x/tools nilness analyzer over the module when the
# environment provides it, and skips cleanly when it does not. The repo
# vendors no third-party code, so offline containers (and the hermetic CI
# image) cannot fetch x/tools; nilness is a belt-and-suspenders pass on top
# of go vet + eflint, not a gate we fail closed on.
#
# Resolution order:
#   1. a `nilness` binary already on PATH;
#   2. the nilness command resolvable through the module graph (go list
#      succeeds only when x/tools is present in the cache or fetchable);
#   3. otherwise: announce the skip and exit 0.
set -eu

if command -v nilness >/dev/null 2>&1; then
    exec nilness ./...
fi

NILNESS_PKG=golang.org/x/tools/go/analysis/passes/nilness/cmd/nilness
if go list "$NILNESS_PKG" >/dev/null 2>&1; then
    exec go run "$NILNESS_PKG" ./...
fi

echo "nilness: golang.org/x/tools unavailable in this environment; skipping (go vet + eflint still ran)" >&2
exit 0
