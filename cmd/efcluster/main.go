// Command efcluster runs the full stack end to end: a serverless platform,
// one RPC worker agent per virtual server, and the orchestrator reconciling
// every scheduling decision onto live elastic trainers. It submits a small
// demo workload, drives training, and reports what happened — the
// composition of every box in Fig. 1, runnable in one process.
//
// Usage:
//
//	efcluster [-servers 2] [-gpus-per-server 8] [-jobs 3] [-iters 150]
//	          [-faults 'crash:agent=server-1,op=Step,at=12'] [-fault-seed 42]
//	          [-heartbeat-misses 3]
//
// -faults takes a deterministic injection schedule (see internal/faults:
// ';'-separated rules of kind error|delay|drop|crash). With a crash rule the
// run exercises the full §4.4 recovery path: heartbeats detect the dead
// agent, its jobs restart from mirrored checkpoints on the survivors, and
// the demo prints the fault/recovery event trail at the end.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/elasticflow/elasticflow/internal/agent"
	"github.com/elasticflow/elasticflow/internal/cluster"
	"github.com/elasticflow/elasticflow/internal/faults"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/serverless"
	"github.com/elasticflow/elasticflow/internal/topology"
)

func main() {
	servers := flag.Int("servers", 2, "virtual servers / worker agents (power of two)")
	perServer := flag.Int("gpus-per-server", 8, "GPUs per server (power of two)")
	jobs := flag.Int("jobs", 3, "demo jobs to submit")
	iters := flag.Int("iters", 150, "training iterations per job")
	faultSpec := flag.String("faults", "", "fault schedule, e.g. 'crash:agent=server-1,op=Step,at=12' (see internal/faults)")
	faultSeed := flag.Int64("fault-seed", 42, "seed for probabilistic fault rules")
	heartbeatMisses := flag.Int("heartbeat-misses", 3, "consecutive failed pings before an agent is declared down")
	flag.Parse()

	var inj *faults.Injector
	if *faultSpec != "" {
		rules, err := faults.Parse(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		inj = faults.New(*faultSeed, rules)
	}
	clock := time.Unix(0, 0)
	orch, err := cluster.New(cluster.Options{
		Platform: serverless.Options{
			Topology: topology.Config{Servers: *servers, GPUsPerServer: *perServer},
			Clock:    func() time.Time { return clock },
		},
		Faults:          inj,
		HeartbeatMisses: *heartbeatMisses,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()
	fmt.Printf("efcluster: %d agents × %d GPUs, ElasticFlow scheduling live trainers over net/rpc\n", *servers, *perServer)
	if inj != nil {
		fmt.Printf("fault injection armed (seed %d): %s\n", *faultSeed, *faultSpec)
	}
	fmt.Println()

	// Submit a few serverless functions, rotating through the catalog.
	catalog := model.Catalog()
	var ids []string
	for i := 0; i < *jobs; i++ {
		spec := catalog[i%len(catalog)]
		batch := spec.BatchSizes[len(spec.BatchSizes)-1]
		st, err := orch.Submit(serverless.SubmitRequest{
			Model:           spec.Name,
			GlobalBatch:     batch,
			Iterations:      1e6, // platform-side budget; training is driven below
			DeadlineSeconds: 1e6,
		}, agent.TaskSpec{
			Dim: 6, DataSeed: int64(40 + i), DataN: 1024, Noise: 0.02,
			GlobalBatch: batch, LearningRate: 0.05, InitSeed: int64(i),
			TotalIters: *iters,
		})
		if err != nil {
			log.Fatal(err)
		}
		if st.State == "dropped" {
			fmt.Printf("submitted %-12s -> %s: dropped (admission control cannot guarantee the deadline)\n", spec.Name, st.ID)
			clock = clock.Add(30 * time.Second)
			continue
		}
		home, _ := orch.Home(st.ID)
		fmt.Printf("submitted %-12s -> %s: %s, %d GPUs on %s, local batch %d\n",
			spec.Name, st.ID, st.State, st.GPUs, home, st.LocalBatch)
		ids = append(ids, st.ID)
		clock = clock.Add(30 * time.Second)
	}

	// Drive training; reconcile between rounds so elastic decisions land,
	// and heartbeat so injected agent deaths are detected and recovered.
	// Per-job step/reconcile errors are expected while a fault is in
	// flight — the next health check fences the agent and recovery
	// relaunches its jobs — so they are logged, not fatal.
	fmt.Println()
	for round := 0; round < *iters/10; round++ {
		if err := orch.Step(10); err != nil {
			log.Printf("step: %v", err)
		}
		clock = clock.Add(time.Minute)
		if down := orch.HealthCheck(); len(down) > 0 {
			fmt.Printf("health: declared %v down; recovering their jobs from mirrored checkpoints\n", down)
		}
		if err := orch.Reconcile(); err != nil {
			log.Printf("reconcile: %v", err)
		}
	}

	fmt.Println("\nfinal training state:")
	for _, id := range ids {
		ts, err := orch.TrainingStatus(id)
		if err != nil {
			fmt.Printf("  %s unreachable: %v\n", id, err)
			continue
		}
		home, _ := orch.Home(id)
		fmt.Printf("  %s on %-9s step=%d/%d workers=%d loss=%.6f done=%v\n",
			id, home, ts.Step, *iters, ts.Workers, ts.Loss, ts.Done)
	}

	// With faults armed, show the §4.4 trail: injections, detection,
	// mirror/restore traffic.
	if inj != nil {
		fmt.Println("\nfault/recovery events:")
		for _, ev := range orch.Platform().Obs().Bus.Since(0) {
			switch ev.Kind {
			case obs.KindFault, obs.KindRetry, obs.KindAgentDown, obs.KindAgentUp,
				obs.KindRestore, obs.KindLost, obs.KindInfeasible:
				fmt.Printf("  %-18s job=%-9s %v\n", ev.Kind, ev.JobID, ev.Fields)
			}
		}
	}
}
