// Command efcluster runs the full stack end to end: a serverless platform,
// one RPC worker agent per virtual server, and the orchestrator reconciling
// every scheduling decision onto live elastic trainers. It submits a small
// demo workload, drives training, and reports what happened — the
// composition of every box in Fig. 1, runnable in one process.
//
// Usage:
//
//	efcluster [-servers 2] [-gpus-per-server 8] [-jobs 3] [-iters 150]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/elasticflow/elasticflow/internal/agent"
	"github.com/elasticflow/elasticflow/internal/cluster"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/serverless"
	"github.com/elasticflow/elasticflow/internal/topology"
)

func main() {
	servers := flag.Int("servers", 2, "virtual servers / worker agents (power of two)")
	perServer := flag.Int("gpus-per-server", 8, "GPUs per server (power of two)")
	jobs := flag.Int("jobs", 3, "demo jobs to submit")
	iters := flag.Int("iters", 150, "training iterations per job")
	flag.Parse()

	clock := time.Unix(0, 0)
	orch, err := cluster.New(cluster.Options{Platform: serverless.Options{
		Topology: topology.Config{Servers: *servers, GPUsPerServer: *perServer},
		Clock:    func() time.Time { return clock },
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer orch.Close()
	fmt.Printf("efcluster: %d agents × %d GPUs, ElasticFlow scheduling live trainers over net/rpc\n\n",
		*servers, *perServer)

	// Submit a few serverless functions, rotating through the catalog.
	catalog := model.Catalog()
	var ids []string
	for i := 0; i < *jobs; i++ {
		spec := catalog[i%len(catalog)]
		batch := spec.BatchSizes[len(spec.BatchSizes)-1]
		st, err := orch.Submit(serverless.SubmitRequest{
			Model:           spec.Name,
			GlobalBatch:     batch,
			Iterations:      1e6, // platform-side budget; training is driven below
			DeadlineSeconds: 1e6,
		}, agent.TaskSpec{
			Dim: 6, DataSeed: int64(40 + i), DataN: 1024, Noise: 0.02,
			GlobalBatch: batch, LearningRate: 0.05, InitSeed: int64(i),
			TotalIters: *iters,
		})
		if err != nil {
			log.Fatal(err)
		}
		if st.State == "dropped" {
			fmt.Printf("submitted %-12s -> %s: dropped (admission control cannot guarantee the deadline)\n", spec.Name, st.ID)
			clock = clock.Add(30 * time.Second)
			continue
		}
		home, _ := orch.Home(st.ID)
		fmt.Printf("submitted %-12s -> %s: %s, %d GPUs on %s, local batch %d\n",
			spec.Name, st.ID, st.State, st.GPUs, home, st.LocalBatch)
		ids = append(ids, st.ID)
		clock = clock.Add(30 * time.Second)
	}

	// Drive training; reconcile between rounds so elastic decisions land.
	fmt.Println()
	for round := 0; round < *iters/10; round++ {
		if err := orch.Step(10); err != nil {
			log.Fatal(err)
		}
		clock = clock.Add(time.Minute)
		if err := orch.Reconcile(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("final training state:")
	for _, id := range ids {
		ts, err := orch.TrainingStatus(id)
		if err != nil {
			log.Fatal(err)
		}
		home, _ := orch.Home(id)
		fmt.Printf("  %s on %-9s step=%d/%d workers=%d loss=%.6f done=%v\n",
			id, home, ts.Step, *iters, ts.Workers, ts.Loss, ts.Done)
	}
}
