// Command eflint is the repo's multichecker: it runs the custom analyzers
// under internal/analysis (detlint, guardlint, floatlint, errlint) over
// package patterns and exits non-zero when any finding survives its
// //eflint:ignore suppressions.
//
// Usage:
//
//	eflint [-only a,b] [-list] [packages]
//
// Packages default to ./... relative to the module root containing the
// working directory. Run it as `go run ./cmd/eflint ./...` or build it and
// wire it into CI next to go vet; DESIGN.md documents the conventions the
// analyzers enforce.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/elasticflow/elasticflow/internal/analysis"
	"github.com/elasticflow/elasticflow/internal/analysis/detlint"
	"github.com/elasticflow/elasticflow/internal/analysis/errlint"
	"github.com/elasticflow/elasticflow/internal/analysis/floatlint"
	"github.com/elasticflow/elasticflow/internal/analysis/guardlint"
)

var all = []*analysis.Analyzer{
	detlint.Analyzer,
	errlint.Analyzer,
	floatlint.Analyzer,
	guardlint.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	diags, err := analysis.Run(root, patterns, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "eflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "eflint: "+format+"\n", args...)
	os.Exit(2)
}
