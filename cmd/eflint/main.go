// Command eflint is the repo's multichecker: it runs the custom analyzers
// under internal/analysis — the per-package passes (detlint, guardlint,
// floatlint, errlint) and the whole-program passes (journalint, locklint,
// obslint) — over package patterns and exits non-zero when any finding
// survives its //eflint:ignore suppressions.
//
// Usage:
//
//	eflint [-only a,b] [-list] [-json] [packages]
//
// Packages default to ./... relative to the module root containing the
// working directory. Run it as `go run ./cmd/eflint ./...` or build it and
// wire it into CI next to go vet; DESIGN.md documents the conventions the
// analyzers enforce.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/elasticflow/elasticflow/internal/analysis"
	"github.com/elasticflow/elasticflow/internal/analysis/detlint"
	"github.com/elasticflow/elasticflow/internal/analysis/errlint"
	"github.com/elasticflow/elasticflow/internal/analysis/floatlint"
	"github.com/elasticflow/elasticflow/internal/analysis/guardlint"
	"github.com/elasticflow/elasticflow/internal/analysis/journalint"
	"github.com/elasticflow/elasticflow/internal/analysis/locklint"
	"github.com/elasticflow/elasticflow/internal/analysis/obslint"
)

var all = []*analysis.Analyzer{
	detlint.Analyzer,
	errlint.Analyzer,
	floatlint.Analyzer,
	guardlint.Analyzer,
	journalint.Analyzer,
	locklint.Analyzer,
	obslint.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default all)")
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines (file/line/analyzer/message)")
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer, len(all))
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	diags, err := analysis.Run(root, patterns, analyzers)
	if err != nil {
		fatalf("%v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			rec := struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message}
			if err := enc.Encode(rec); err != nil {
				fatalf("%v", err)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "eflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "eflint: "+format+"\n", args...)
	os.Exit(2)
}
