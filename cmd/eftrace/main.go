// Command eftrace generates workload traces (§6.1) and writes them as JSON
// for efsim.
//
// Usage:
//
//	eftrace -out trace.json [-jobs N] [-gpus N] [-load F] [-be F] [-seed N]
//	eftrace -production -out dir/    # the ten cluster traces + philly
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/elasticflow/elasticflow/internal/trace"
)

func main() {
	out := flag.String("out", "", "output file (or directory with -production)")
	jobs := flag.Int("jobs", 100, "number of jobs")
	gpus := flag.Int("gpus", 128, "cluster GPUs")
	load := flag.Float64("load", 1.2, "offered load")
	be := flag.Float64("be", 0, "best-effort fraction")
	seed := flag.Int64("seed", 1, "random seed")
	name := flag.String("name", "custom", "trace name")
	users := flag.Int("users", 0, "number of distinct users (0 = anonymous)")
	production := flag.Bool("production", false, "emit the ten production-style traces plus philly")
	stats := flag.Bool("stats", false, "print distribution statistics for the generated or loaded trace")
	in := flag.String("in", "", "with -stats: load this trace instead of generating one")
	flag.Parse()

	if *stats {
		var tr trace.Trace
		var err error
		if *in != "" {
			tr, err = trace.Load(*in)
			if err != nil {
				fatal(err)
			}
		} else {
			tr = trace.Generate(trace.Config{
				Name: *name, Jobs: *jobs, ClusterGPUs: *gpus, Load: *load,
				BestEffortFraction: *be, Seed: *seed,
			})
		}
		fmt.Print(tr.Stats())
		return
	}

	if *out == "" {
		fmt.Fprintln(os.Stderr, "eftrace: -out is required")
		os.Exit(2)
	}
	if *production {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		traces := append(trace.ProductionTraces(*jobs), trace.PhillyTrace(*jobs))
		for _, tr := range traces {
			path := filepath.Join(*out, tr.Name+".json")
			if err := tr.Save(path); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d jobs, %d GPUs)\n", path, len(tr.Items), tr.GPUs)
		}
		return
	}
	tr := trace.Generate(trace.Config{
		Name: *name, Jobs: *jobs, ClusterGPUs: *gpus, Load: *load,
		BestEffortFraction: *be, Users: *users, Seed: *seed,
	})
	var err error
	if strings.HasSuffix(*out, ".csv") {
		err = tr.SaveCSV(*out)
	} else {
		err = tr.Save(*out)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d jobs, %d GPUs, span %.1fh)\n", *out, len(tr.Items), tr.GPUs, tr.Span()/3600)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eftrace:", err)
	os.Exit(1)
}
