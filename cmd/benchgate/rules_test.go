package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/elasticflow/elasticflow/internal/bench"
)

func report(numCPU int) *bench.Report {
	return &bench.Report{
		Schema: bench.SchemaV3,
		NumCPU: numCPU,
		Experiments: []bench.Experiment{
			{ID: "scale", Metrics: map[string]float64{
				"jobs_per_sec_w8": 120,
				"speedup_w8":      3.4,
			}},
			{ID: "fig6a"}, // no metrics at all
		},
	}
}

func TestParseRule(t *testing.T) {
	cases := []struct {
		in   string
		want rule
	}{
		{"scale.jobs_per_sec_w8>=50", rule{exp: "scale", metric: "jobs_per_sec_w8", op: ">=", value: 50}},
		{"scale.speedup_w8>=3.0 @cpus>=8", rule{exp: "scale", metric: "speedup_w8", op: ">=", value: 3, minCPUs: 8}},
		{"store.recovery_ms<=250", rule{exp: "store", metric: "recovery_ms", op: "<=", value: 250}},
		{" scale.x >= 1 ", rule{exp: "scale", metric: "x", op: ">=", value: 1}},
	}
	for _, c := range cases {
		got, err := parseRule(c.in)
		if err != nil {
			t.Errorf("parseRule(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseRule(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{
		"",
		"no-operator",
		"scale>=1",               // no metric
		"scale.>=1",              // empty metric
		"scale.x>=abc",           // bad value
		"scale.x>=1 @cpus>=zero", // bad condition
		"scale.x==1",             // unsupported operator
		"scale.x>=1 @cpus>=",     // empty threshold
		"scale.x>=1 @cpus>=0",    // a rule no host could skip-test is a typo
		"scale.x>=1 @cpus>=-3",   // negative threshold
		"scale.x>=1 @cpus>=3.5",  // fractional CPU count
		".x>=1",                  // empty experiment
	} {
		if _, err := parseRule(bad); err == nil {
			t.Errorf("parseRule(%q) accepted", bad)
		}
	}
}

// TestEvalRuleUnknownNames pins the loud-failure messages: a rule naming an
// experiment or metric absent from the report must fail (not skip) and say
// which name was missing.
func TestEvalRuleUnknownNames(t *testing.T) {
	rep := report(16)
	cases := []struct {
		rule, wantSubstr string
	}{
		{"frontdoor.submissions_per_min>=100000", `experiment "frontdoor" not in report`},
		{"scale.submissions_per_min>=100000", `metric "submissions_per_min" missing`},
	}
	for _, c := range cases {
		r, err := parseRule(c.rule)
		if err != nil {
			t.Fatalf("parseRule(%q): %v", c.rule, err)
		}
		o := evalRule(r, rep)
		if !o.failed {
			t.Errorf("evalRule(%q) did not fail", c.rule)
		}
		if !strings.Contains(o.status, c.wantSubstr) {
			t.Errorf("evalRule(%q) status %q, want substring %q", c.rule, o.status, c.wantSubstr)
		}
	}
}

func TestReadRulesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rules.txt")
	if err := os.WriteFile(path, []byte(
		"# perf floors\n\n  scale.jobs_per_sec_w8>=50  \nfrontdoor.submissions_per_min>=100000 @cpus>=8\n#trailing comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rules, err := readRulesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"scale.jobs_per_sec_w8>=50", "frontdoor.submissions_per_min>=100000 @cpus>=8"}
	if len(rules) != len(want) || rules[0] != want[0] || rules[1] != want[1] {
		t.Fatalf("rules = %q, want %q", rules, want)
	}

	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, []byte("# only comments\n\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRulesFile(empty); err == nil {
		t.Error("rules file with no rules accepted")
	}
	if _, err := readRulesFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing rules file accepted")
	}
}

func TestEvalRulePassFail(t *testing.T) {
	rep := report(16)
	cases := []struct {
		rule     string
		wantFail bool
	}{
		{"scale.jobs_per_sec_w8>=50", false},
		{"scale.jobs_per_sec_w8>=500", true},
		{"scale.speedup_w8>=3.0", false},
		{"scale.speedup_w8>=4.0", true},
		{"scale.speedup_w8<=4.0", false},
		{"scale.speedup_w8<=3.0", true},
		{"scale.no_such_metric>=1", true}, // vanished metric fails loudly
		{"nope.x>=1", true},               // vanished experiment fails loudly
		{"fig6a.x>=1", true},              // experiment without metrics
	}
	for _, c := range cases {
		r, err := parseRule(c.rule)
		if err != nil {
			t.Fatalf("parseRule(%q): %v", c.rule, err)
		}
		if o := evalRule(r, rep); o.failed != c.wantFail {
			t.Errorf("evalRule(%q) failed=%v (%s), want failed=%v", c.rule, o.failed, o.status, c.wantFail)
		}
	}
}

// TestEvalRuleCPUCondition: a @cpus>=N rule on an under-provisioned host is
// skipped — neither passed nor failed — so speedup floors can be asserted
// unconditionally in CI config and only enforced where they are measurable.
func TestEvalRuleCPUCondition(t *testing.T) {
	r, err := parseRule("scale.speedup_w8>=100 @cpus>=8") // would fail if evaluated
	if err != nil {
		t.Fatal(err)
	}
	if o := evalRule(r, report(4)); o.failed {
		t.Errorf("rule enforced on a 4-CPU host: %s", o.status)
	}
	if o := evalRule(r, report(8)); !o.failed {
		t.Error("rule not enforced on an 8-CPU host")
	}
}

func TestGateMetrics(t *testing.T) {
	outcomes, failed, err := gateMetrics([]string{
		"scale.jobs_per_sec_w8>=50",
		"scale.speedup_w8>=100 @cpus>=32",
	}, report(16))
	if err != nil || failed {
		t.Fatalf("gate = (failed=%v, err=%v), want clean pass", failed, err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	if _, failed, _ = gateMetrics([]string{"scale.speedup_w8>=100"}, report(16)); !failed {
		t.Error("failing rule did not fail the gate")
	}
	if _, _, err = gateMetrics([]string{"garbage"}, report(16)); err == nil {
		t.Error("unparseable rule did not error")
	}
}
