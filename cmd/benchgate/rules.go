// Metric-rule gating: besides comparing two `go test -bench` outputs,
// benchgate can assert floors (or ceilings) on the machine-readable scalars a
// BENCH.json report carries — e.g. the scale experiment's jobs/sec and
// parallel speedup. A rule reads
//
//	<experiment>.<metric> >= <value> [@cpus>=N]
//	<experiment>.<metric> <= <value> [@cpus>=N]
//
// (spaces optional). The optional @cpus>=N suffix makes the rule conditional
// on the measuring host: speedup floors are meaningless on a 1-CPU runner, so
// a rule like `scale.speedup_w8>=3.0 @cpus>=8` is recorded as skipped — not
// passed, not failed — when the report's num_cpu is below 8.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/elasticflow/elasticflow/internal/bench"
)

// rule is one parsed -rule flag.
type rule struct {
	exp, metric string
	op          string // ">=" or "<="
	value       float64
	minCPUs     int // 0 = unconditional
}

func (r rule) String() string {
	s := fmt.Sprintf("%s.%s%s%g", r.exp, r.metric, r.op, r.value)
	if r.minCPUs > 0 {
		s += fmt.Sprintf(" @cpus>=%d", r.minCPUs)
	}
	return s
}

// parseRule parses the textual rule syntax above.
func parseRule(s string) (rule, error) {
	var r rule
	body := s
	if i := strings.Index(s, "@cpus>="); i >= 0 {
		n, err := strconv.Atoi(strings.TrimSpace(s[i+len("@cpus>="):]))
		if err != nil || n < 1 {
			return r, fmt.Errorf("rule %q: bad @cpus>= condition", s)
		}
		r.minCPUs = n
		body = s[:i]
	}
	body = strings.TrimSpace(body)
	opIdx := strings.Index(body, ">=")
	r.op = ">="
	if opIdx < 0 {
		opIdx = strings.Index(body, "<=")
		r.op = "<="
	}
	if opIdx < 0 {
		return r, fmt.Errorf("rule %q: want <experiment>.<metric>>=<value> or <=", s)
	}
	target, valStr := strings.TrimSpace(body[:opIdx]), strings.TrimSpace(body[opIdx+2:])
	dot := strings.Index(target, ".")
	if dot <= 0 || dot == len(target)-1 {
		return r, fmt.Errorf("rule %q: target %q is not <experiment>.<metric>", s, target)
	}
	r.exp, r.metric = target[:dot], target[dot+1:]
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return r, fmt.Errorf("rule %q: bad value %q", s, valStr)
	}
	r.value = v
	return r, nil
}

// readRulesFile loads rules from a file, one per line; blank lines and
// #-comments are skipped. A file that yields no rules is an error — a gate
// config that silently checks nothing is exactly the misconfiguration this
// refuses to paper over.
func readRulesFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rules file %s contains no rules", path)
	}
	return out, nil
}

// ruleOutcome is one rule's evaluation against a report.
type ruleOutcome struct {
	rule   rule
	status string // "ok", "skipped (...)", or the failure description
	failed bool
}

// evalRule checks one rule against the report. A missing experiment or
// metric fails the gate — a metric silently vanishing from BENCH.json is
// exactly the regression the rule exists to catch.
func evalRule(r rule, rep *bench.Report) ruleOutcome {
	if r.minCPUs > 0 && rep.NumCPU < r.minCPUs {
		return ruleOutcome{rule: r, status: fmt.Sprintf("skipped (host has %d CPUs, rule needs ≥%d)", rep.NumCPU, r.minCPUs)}
	}
	for _, e := range rep.Experiments {
		if e.ID != r.exp {
			continue
		}
		v, ok := e.Metrics[r.metric]
		if !ok {
			return ruleOutcome{rule: r, failed: true, status: fmt.Sprintf("metric %q missing from experiment %q", r.metric, r.exp)}
		}
		pass := v >= r.value
		if r.op == "<=" {
			pass = v <= r.value
		}
		if !pass {
			return ruleOutcome{rule: r, failed: true, status: fmt.Sprintf("got %g, want %s%g", v, r.op, r.value)}
		}
		return ruleOutcome{rule: r, status: fmt.Sprintf("ok (%g)", v)}
	}
	return ruleOutcome{rule: r, failed: true, status: fmt.Sprintf("experiment %q not in report", r.exp)}
}

// gateMetrics parses every rule, evaluates them against the report, and
// returns the outcomes plus whether any rule failed.
func gateMetrics(ruleStrs []string, rep *bench.Report) ([]ruleOutcome, bool, error) {
	outcomes := make([]ruleOutcome, 0, len(ruleStrs))
	failed := false
	for _, s := range ruleStrs {
		r, err := parseRule(s)
		if err != nil {
			return nil, false, err
		}
		o := evalRule(r, rep)
		failed = failed || o.failed
		outcomes = append(outcomes, o)
	}
	return outcomes, failed, nil
}
