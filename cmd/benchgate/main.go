// Command benchgate compares two `go test -bench` outputs and fails when any
// benchmark's median wall time regressed beyond a threshold. CI runs it
// between the PR base and head (see .github/workflows/ci.yml); locally,
// `make bench` drives it against a saved baseline. It can additionally (or
// instead) gate the machine-readable scalars of a BENCH.json report — see
// rules.go for the -rule syntax, including the @cpus>= host condition.
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-threshold 0.15] [-bench regexp]
//	benchgate -metrics BENCH.json -rule 'scale.jobs_per_sec_w8>=50' \
//	          -rule 'scale.speedup_w8>=3.0 @cpus>=8'
//	benchgate -metrics BENCH.json -rules-file rules.txt
//
// Medians over -count repetitions absorb runner noise; a single noisy
// repetition cannot fail the gate. Benchmarks present on only one side are
// reported but never fail the gate (new or deleted benchmarks are not
// regressions). Both gate modes share the perf-exempt escape hatch: CI skips
// the whole job when the PR carries that label. The tool depends only on
// this repo on purpose: benchstat renders the human-readable comparison in
// CI, but the pass/fail decision must not hinge on installing anything.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"

	"github.com/elasticflow/elasticflow/internal/bench"
)

// ruleList collects repeated -rule flags.
type ruleList []string

func (r *ruleList) String() string     { return fmt.Sprint(*r) }
func (r *ruleList) Set(s string) error { *r = append(*r, s); return nil }

// benchLine matches e.g.
//
//	BenchmarkFig6aTestbedSmall-8   1   1498238 ns/op   456376 B/op  4215 allocs/op
//
// capturing the name (CPU suffix stripped separately) and the ns/op value.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// cpuSuffix strips the -<GOMAXPROCS> suffix Go appends to benchmark names.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

func parse(path string, filter *regexp.Regexp) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]float64)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := cpuSuffix.ReplaceAllString(m[1], "")
		if filter != nil && !filter.MatchString(name) {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad ns/op in %q: %w", path, sc.Text(), err)
		}
		out[name] = append(out[name], v)
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func main() {
	base := flag.String("base", "", "benchmark output of the base commit")
	head := flag.String("head", "", "benchmark output of the head commit")
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated relative wall-time regression")
	benchRE := flag.String("bench", "", "only gate benchmarks matching this regexp (default: all)")
	metrics := flag.String("metrics", "", "BENCH.json report to gate with -rule assertions")
	var rules ruleList
	flag.Var(&rules, "rule", "metric rule, e.g. 'scale.speedup_w8>=3.0 @cpus>=8' (repeatable; requires -metrics)")
	rulesFile := flag.String("rules-file", "", "file of metric rules, one per line (# comments; requires -metrics)")
	flag.Parse()

	if *rulesFile != "" {
		fromFile, err := readRulesFile(*rulesFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		rules = append(rules, fromFile...)
	}

	if *metrics != "" {
		if len(rules) == 0 {
			fmt.Fprintln(os.Stderr, "benchgate: -metrics given but no -rule to check")
			os.Exit(2)
		}
		f, err := os.Open(*metrics)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		rep, err := bench.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		outcomes, failed, err := gateMetrics(rules, rep)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		for _, o := range outcomes {
			fmt.Printf("%-52s %s\n", o.rule, o.status)
		}
		if failed {
			fmt.Fprintln(os.Stderr, "benchgate: metric rule failed — label the PR perf-exempt if intentional")
			os.Exit(1)
		}
		fmt.Printf("benchgate: metrics ok (%d rules)\n", len(outcomes))
		if *base == "" && *head == "" {
			return
		}
	} else if len(rules) > 0 {
		fmt.Fprintln(os.Stderr, "benchgate: -rule requires -metrics")
		os.Exit(2)
	}

	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required (or use -metrics with -rule)")
		os.Exit(2)
	}
	var filter *regexp.Regexp
	if *benchRE != "" {
		var err error
		if filter, err = regexp.Compile(*benchRE); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: -bench: %v\n", err)
			os.Exit(2)
		}
	}
	baseRuns, err := parse(*base, filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	headRuns, err := parse(*head, filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(headRuns) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmark results in head output")
		os.Exit(2)
	}

	names := make([]string, 0, len(headRuns))
	for name := range headRuns {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "base med", "head med", "delta")
	for _, name := range names {
		h := median(headRuns[name])
		b, ok := baseRuns[name]
		if !ok {
			fmt.Printf("%-44s %14s %14.0f %8s\n", name, "(new)", h, "-")
			continue
		}
		bm := median(b)
		delta := (h - bm) / bm
		mark := ""
		if delta > *threshold {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-44s %14.0f %14.0f %+7.1f%%%s\n", name, bm, h, delta*100, mark)
	}
	for name := range baseRuns {
		if _, ok := headRuns[name]; !ok {
			fmt.Printf("%-44s %14.0f %14s %8s\n", name, median(baseRuns[name]), "(gone)", "-")
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: wall-time regression beyond %.0f%% — label the PR perf-exempt if intentional\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: ok (threshold %.0f%%)\n", *threshold*100)
}
