// Command efbench regenerates the paper's tables and figures.
//
// Usage:
//
//	efbench [-exp id[,id...]] [-quick] [-list] [-json file]
//
// Without -exp it runs every experiment in order. With -json it also writes
// a machine-readable performance report (see internal/bench): per-experiment
// wall time, scheduler decisions/sec, allocation runs/sec, the plan cache's
// hit rate, and a tracing calibration (span count plus the relative
// wall-time overhead of span emission, measured by running the same
// simulated workload with and without a tracer) — the BENCH.json artifact
// CI archives per commit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/elasticflow/elasticflow/internal/bench"
	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/experiments"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/obs/tracing"
	"github.com/elasticflow/elasticflow/internal/sim"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
	"github.com/elasticflow/elasticflow/internal/trace"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "also write each table to <dir>/<id>.txt")
	jsonOut := flag.String("json", "", "write a machine-readable perf report to this file (e.g. BENCH.json)")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	// efbench is the measurement harness, so it injects the real wall clock;
	// the experiments package itself stays deterministic (detlint-enforced).
	opts := experiments.Options{Quick: *quick, Clock: time.Now}
	report := &bench.Report{GoVersion: runtime.Version(), NumCPU: runtime.NumCPU(), Quick: *quick}
	for _, id := range ids {
		gen, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "efbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		core.ResetPlanCacheStats()
		core.ResetDecisionStats()
		start := time.Now()
		table, err := gen(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		hits, misses := core.PlanCacheStats()
		admits, allocs := core.DecisionStats()
		report.Experiments = append(report.Experiments, bench.Experiment{
			ID:              id,
			WallSec:         wall,
			Decisions:       admits,
			Allocations:     allocs,
			PlanCacheHits:   hits,
			PlanCacheMisses: misses,
			Metrics:         table.Metrics,
			Scale:           table.Scale,
			Frontdoor:       table.Frontdoor,
		})
		fmt.Println(table)
		fmt.Printf("(%s took %.1fs)\n\n", id, wall)
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(table.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "efbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut != "" {
		spans, overhead, err := traceCalibration(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efbench: trace calibration: %v\n", err)
			os.Exit(1)
		}
		report.SpanCount = spans
		report.TraceOverhead = overhead
		fmt.Printf("trace calibration: %d spans, %.1f%% overhead\n\n", spans, 100*overhead)
		report.Finalize()
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.Write(f); err != nil {
			fmt.Fprintf(os.Stderr, "efbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "efbench: closing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}

// traceCalibration measures span tracing's cost: the same deterministic
// simulated workload, identical in every decision, run with the full
// observability stack and then again with a span tracer added. Returns the
// traced run's span count and the relative wall-time overhead
// (traced/untraced − 1; clamped at 0 when noise makes the traced run
// faster). The measurement is noise-hardened two ways: the arms run as
// interleaved baseline/traced pairs and the reported overhead comes from
// the median pairwise ratio, so a load burst on the host inflates both
// halves of a pair (ratio unchanged) or a minority of pairs (discarded
// by the median); and the workload is NOT shrunk under -quick — a 40-job
// run finishes in a few milliseconds, where one scheduler hiccup reads
// as double-digit overhead; 200 jobs (~0.3s per run, ~3s for the whole
// calibration) keeps the ratio honest. A throwaway warm-up run precedes
// the pairs so allocator and cache warm-up is charged to neither arm.
func traceCalibration(bool) (uint64, float64, error) {
	const jobs = 200
	const reps = 5
	runOnce := func(tr *tracing.Tracer) (uint64, float64, error) {
		tc := trace.Generate(trace.Config{Name: "calib", Jobs: jobs, ClusterGPUs: 128, Load: 1.2, Seed: 7})
		hw := model.DefaultA100()
		est := throughput.NewEstimator(hw)
		jobList, err := tc.Jobs(throughput.NewProfiler(est, 8, tc.GPUs), est)
		if err != nil {
			return 0, 0, err
		}
		sink := obs.New(obs.Options{RingSize: 1 << 20, Tracer: tr})
		s := core.New(core.Options{PowerOfTwo: true}).WithObs(sink)
		// Settle the heap so neither arm pays the other's GC debt.
		runtime.GC()
		start := time.Now()
		if _, err := sim.Run(sim.Config{
			Topology:  topology.Config{Servers: tc.GPUs / 8, GPUsPerServer: 8},
			Scheduler: s,
			SampleSec: 600,
			Obs:       sink,
		}, jobList, tc.Name); err != nil {
			return 0, 0, err
		}
		return sink.Tracer().Count(), time.Since(start).Seconds(), nil
	}
	if _, _, err := runOnce(nil); err != nil { // warm-up
		return 0, 0, err
	}
	var spans uint64
	var ratios []float64
	for i := 0; i < reps; i++ {
		_, baseline, err := runOnce(nil)
		if err != nil {
			return 0, 0, err
		}
		s, traced, err := runOnce(tracing.New(7).WithCap(1 << 20))
		if err != nil {
			return 0, 0, err
		}
		spans = s
		if baseline > 0 {
			ratios = append(ratios, traced/baseline)
		}
	}
	overhead := 0.0
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		overhead = ratios[len(ratios)/2] - 1
	}
	if overhead < 0 {
		overhead = 0
	}
	return spans, overhead, nil
}
