// Command efbench regenerates the paper's tables and figures.
//
// Usage:
//
//	efbench [-exp id[,id...]] [-quick] [-list]
//
// Without -exp it runs every experiment in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/elasticflow/elasticflow/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "also write each table to <dir>/<id>.txt")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	opts := experiments.Options{Quick: *quick}
	for _, id := range ids {
		gen, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "efbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		table, err := gen(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(%s took %.1fs)\n\n", id, time.Since(start).Seconds())
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(table.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "efbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
}
