// Command efbench regenerates the paper's tables and figures.
//
// Usage:
//
//	efbench [-exp id[,id...]] [-quick] [-list] [-json file]
//
// Without -exp it runs every experiment in order. With -json it also writes
// a machine-readable performance report (see internal/bench): per-experiment
// wall time, scheduler decisions/sec, allocation runs/sec, and the plan
// cache's hit rate — the BENCH.json artifact CI archives per commit.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/elasticflow/elasticflow/internal/bench"
	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "shrink workloads for a fast pass")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	out := flag.String("out", "", "also write each table to <dir>/<id>.txt")
	jsonOut := flag.String("json", "", "write a machine-readable perf report to this file (e.g. BENCH.json)")
	flag.Parse()

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %v\n", err)
			os.Exit(1)
		}
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	// efbench is the measurement harness, so it injects the real wall clock;
	// the experiments package itself stays deterministic (detlint-enforced).
	opts := experiments.Options{Quick: *quick, Clock: time.Now}
	report := &bench.Report{GoVersion: runtime.Version(), Quick: *quick}
	for _, id := range ids {
		gen, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "efbench: unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		core.ResetPlanCacheStats()
		core.ResetDecisionStats()
		start := time.Now()
		table, err := gen(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		wall := time.Since(start).Seconds()
		hits, misses := core.PlanCacheStats()
		admits, allocs := core.DecisionStats()
		report.Experiments = append(report.Experiments, bench.Experiment{
			ID:              id,
			WallSec:         wall,
			Decisions:       admits,
			Allocations:     allocs,
			PlanCacheHits:   hits,
			PlanCacheMisses: misses,
			Metrics:         table.Metrics,
		})
		fmt.Println(table)
		fmt.Printf("(%s took %.1fs)\n\n", id, wall)
		if *out != "" {
			path := filepath.Join(*out, id+".txt")
			if err := os.WriteFile(path, []byte(table.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "efbench: writing %s: %v\n", path, err)
				os.Exit(1)
			}
		}
	}
	if *jsonOut != "" {
		report.Finalize()
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "efbench: %v\n", err)
			os.Exit(1)
		}
		if err := report.Write(f); err != nil {
			fmt.Fprintf(os.Stderr, "efbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "efbench: closing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
	}
}
