// Command efsim replays a workload trace through a scheduler and reports
// the paper's metrics (deadline satisfactory ratio, cluster efficiency,
// best-effort JCT, makespan).
//
// Usage:
//
//	efsim [-trace file.json] [-sched name] [-gpus N] [-jobs N] [-load F] [-seed N] [-v]
//	      [-workers N] [-events out.json] [-metrics out.prom] [-trace-out out.json]
//
// Without -trace a synthetic trace is generated from -gpus/-jobs/-load/-seed.
// -events and -metrics export the run's structured event log (JSON) and the
// final metric registry (Prometheus text format); "-" writes to stdout.
// -trace-out exports the causal span trail (job lifecycles, scheduler
// epochs) as Chrome trace-event JSON, loadable at https://ui.perfetto.dev.
// Schedulers: elasticflow, edf, gandiva, tiresias, themis, chronus, pollux,
// edf+ac, edf+es.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	elasticflow "github.com/elasticflow/elasticflow"
	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/obs/tracing"
	"github.com/elasticflow/elasticflow/internal/sim"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
	"github.com/elasticflow/elasticflow/internal/trace"
)

func main() {
	tracePath := flag.String("trace", "", "trace file (.json from eftrace, or .csv with submit_sec/gpus/duration_sec columns); empty = synthesize")
	schedName := flag.String("sched", "elasticflow", "scheduler to run")
	gpus := flag.Int("gpus", 128, "cluster GPUs for synthetic traces (multiple of 8)")
	jobs := flag.Int("jobs", 100, "jobs in synthetic traces")
	load := flag.Float64("load", 1.2, "offered load for synthetic traces")
	seed := flag.Int64("seed", 1, "synthetic trace seed")
	verbose := flag.Bool("v", false, "print per-job outcomes")
	chart := flag.Bool("chart", false, "print an ASCII GPU-utilization chart")
	jobsCSV := flag.String("jobs-csv", "", "write per-job outcomes as CSV to this file")
	timelineCSV := flag.String("timeline-csv", "", "write the utilization/efficiency timeline as CSV to this file")
	eventsOut := flag.String("events", "", "write the structured event log as JSON to this file (\"-\" = stdout)")
	metricsOut := flag.String("metrics", "", "write final metrics in Prometheus text format to this file (\"-\" = stdout)")
	traceOut := flag.String("trace-out", "", "write the span trail as Chrome trace-event JSON (Perfetto-loadable) to this file (\"-\" = stdout)")
	workers := flag.Int("workers", 0, "simulator shard goroutines (0 or 1 = serial; results are byte-identical at any count)")
	flag.Parse()

	var tr trace.Trace
	if *tracePath != "" {
		var err error
		if strings.HasSuffix(*tracePath, ".csv") {
			tr, err = trace.LoadCSV(*tracePath, "csv-trace", *gpus, *seed)
		} else {
			tr, err = trace.Load(*tracePath)
		}
		if err != nil {
			fatal(err)
		}
	} else {
		tr = trace.Generate(trace.Config{
			Name: "efsim", Jobs: *jobs, ClusterGPUs: *gpus, Load: *load, Seed: *seed,
		})
	}

	s, err := elasticflow.SchedulerByName(*schedName)
	if err != nil {
		fatal(err)
	}
	// Observability is opt-in: the sink only exists when an export was
	// requested, so default runs pay nothing. The large ring keeps every
	// event of a 100-job trace. The span tracer is seeded from the trace
	// seed, so same-seed runs export byte-identical trails.
	var sink *obs.Obs
	if *eventsOut != "" || *metricsOut != "" || *traceOut != "" {
		opts := obs.Options{RingSize: 1 << 20}
		if *traceOut != "" {
			opts.Tracer = tracing.New(uint64(*seed)).WithCap(1 << 20)
		}
		sink = obs.New(opts)
		if tracer, ok := s.(interface {
			WithObs(*obs.Obs) *core.ElasticFlow
		}); ok {
			tracer.WithObs(sink)
		}
	}
	hw := model.DefaultA100()
	est := throughput.NewEstimator(hw)
	prof := throughput.NewProfiler(est, 8, tr.GPUs)
	jobList, err := tr.Jobs(prof, est)
	if err != nil {
		fatal(err)
	}
	servers := tr.GPUs / 8
	if servers < 1 {
		servers = 1
	}
	res, err := sim.Run(sim.Config{
		Topology:  topology.Config{Servers: servers, GPUsPerServer: 8},
		Scheduler: s,
		SampleSec: 600,
		Obs:       sink,
		Workers:   *workers,
	}, jobList, tr.Name)
	if err != nil {
		fatal(err)
	}
	if *eventsOut != "" {
		if err := writeOut(*eventsOut, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(sink.Bus.Since(0))
		}); err != nil {
			fatal(err)
		}
	}
	if *metricsOut != "" {
		if err := writeOut(*metricsOut, sink.Metrics.WritePrometheus); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeOut(*traceOut, func(w io.Writer) error {
			data, err := tracing.EncodeChrome(sink.Tracer().Spans())
			if err != nil {
				return err
			}
			_, err = w.Write(data)
			return err
		}); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("trace            %s (%d jobs, %d GPUs)\n", res.Trace, len(res.Jobs), tr.GPUs)
	fmt.Printf("scheduler        %s\n", res.Scheduler)
	fmt.Printf("deadline ratio   %.3f\n", res.DeadlineSatisfactoryRatio())
	fmt.Printf("admitted         %d/%d\n", res.AdmittedCount(), len(res.Jobs))
	fmt.Printf("cluster eff      %.3f (Eq. 8 time-weighted)\n", res.AvgClusterEfficiency())
	if jct := res.AvgBestEffortJCT(); jct > 0 {
		fmt.Printf("best-effort JCT  %.0fs\n", jct)
	}
	fmt.Printf("makespan         %.2fh\n", res.Makespan/3600)
	fmt.Printf("rescale events   %d (plus %d migrations)\n", res.Rescales, res.Migrations)
	if stats := res.JCTStatsFor(nil); stats.Count > 0 {
		fmt.Printf("JCT (finished)   mean %.0fs  p50 %.0fs  p90 %.0fs  max %.0fs\n", stats.Mean, stats.P50, stats.P90, stats.Max)
	}
	if *jobsCSV != "" {
		if err := writeCSV(*jobsCSV, res.WriteJobsCSV); err != nil {
			fatal(err)
		}
	}
	if *timelineCSV != "" {
		if err := writeCSV(*timelineCSV, res.WriteTimelineCSV); err != nil {
			fatal(err)
		}
	}
	if res.Starved > 0 {
		fmt.Printf("starved          %d\n", res.Starved)
	}
	if *chart {
		fmt.Println()
		printChart(res, tr.GPUs)
	}
	if *verbose {
		fmt.Println()
		for _, jr := range res.Jobs {
			state := "met"
			switch {
			case jr.Dropped:
				state = "dropped"
			case !jr.Finished:
				state = "unfinished"
			case !jr.Met:
				state = "late"
			}
			fmt.Printf("%-24s %-10s submit=%8.0f deadline=%10.0f completion=%10.0f gpu·s=%10.0f\n",
				jr.ID, state, jr.Submit, jr.Deadline, jr.Completion, jr.GPUSeconds)
		}
	}
}

// printChart renders GPU utilization over time as an ASCII bar chart, one
// row per time bucket.
func printChart(res sim.Result, capacity int) {
	if len(res.Samples) == 0 || res.Makespan <= 0 {
		return
	}
	const rows, width = 24, 50
	bucket := res.Makespan / rows
	sums := make([]float64, rows)
	counts := make([]int, rows)
	for _, s := range res.Samples {
		b := int(s.Time / bucket)
		if b >= rows {
			b = rows - 1
		}
		sums[b] += float64(s.UsedGPUs)
		counts[b]++
	}
	fmt.Printf("GPU utilization (%d GPUs, %.1fh makespan)\n", capacity, res.Makespan/3600)
	for b := 0; b < rows; b++ {
		avg := 0.0
		if counts[b] > 0 {
			avg = sums[b] / float64(counts[b])
		}
		bars := int(avg / float64(capacity) * width)
		if bars > width {
			bars = width
		}
		fmt.Printf("%6.1fh |%-*s| %3.0f%%\n", float64(b)*bucket/3600, width, strings.Repeat("█", bars), 100*avg/float64(capacity))
	}
}

func writeCSV(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeOut writes to path, with "-" meaning stdout.
func writeOut(path string, write func(io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	return writeCSV(path, write)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "efsim:", err)
	os.Exit(1)
}
