// Command efserver runs the ElasticFlow serverless platform: an HTTP/JSON
// control plane over a virtual GPU cluster.
//
// Usage:
//
//	efserver [-addr :8080] [-servers 2] [-gpus-per-server 8] [-timescale 1]
//	         [-state-dir DIR] [-snapshot-every 256] [-chaos 1@30s+60s,kill@90s]
//	         [-shards K] [-tenants SPEC] [-batch-max 64]
//
// Submit a training function with:
//
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "model": "resnet50", "global_batch": 128,
//	  "iterations": 100000, "deadline_seconds": 3600}'
//
// -state-dir makes the control plane durable (DESIGN.md §11): every mutation
// is journaled before it is acknowledged, periodic snapshots truncate the
// journal (-snapshot-every records), and a restart pointing at the same
// directory recovers the exact pre-crash state — admitted jobs keep their
// deadlines, and the platform clock resumes where it stopped.
//
// -chaos takes a comma-separated failure schedule in platform time:
// "1@30s+60s" fails server 1 at t=30s and recovers it 60s later (omit the
// +duration to leave it down); "kill@90s" SIGKILLs the whole process at
// t=90s — the crash half of a durability drill, restart it against the same
// -state-dir to run the recovery half. Server failures are also injectable
// at runtime via POST /v1/cluster/servers/{id}/down and .../up.
//
// -shards K (K>1) or -tenants enables the multi-tenant front door
// (DESIGN.md §16): submissions tagged with a tenant namespace pass
// per-tenant token-bucket rate limits and GPU quotas, then batch per
// scheduling epoch onto one of K control-plane shards, each owning its own
// -servers × -gpus-per-server partition and (with -state-dir) its own
// WAL+snapshot directory under <state-dir>/shard-<k>. -tenants takes
// "name:rate=R,burst=B,gpus=G" specs, semicolon-separated. Per-shard
// control planes (including each shard's /metrics, /debug/events and
// /debug/trace) are served under /v1/shards/{k}/; -chaos is a
// single-platform feature — inject per-shard failures over HTTP instead.
//
// Observability: GET /metrics serves Prometheus text exposition,
// GET /debug/events?since=<seq>&limit=<n> the structured scheduler event
// log, and GET /debug/trace?job=<id> the causal span trail as Perfetto-
// loadable Chrome trace-event JSON. -pprof additionally serves the standard
// net/http/pprof profiling endpoints under /debug/pprof/ (off by default:
// profiling handlers on a control plane are an operator opt-in).
// SIGINT/SIGTERM flush the journal, then drain in-flight requests; mutations
// arriving after the flush begins are rejected with 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on DefaultServeMux; served only with -pprof
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/elasticflow/elasticflow/internal/frontdoor"
	"github.com/elasticflow/elasticflow/internal/obs"
	"github.com/elasticflow/elasticflow/internal/obs/tracing"
	"github.com/elasticflow/elasticflow/internal/serverless"
	"github.com/elasticflow/elasticflow/internal/store"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// chaosEvent is one scheduled chaos action, in platform seconds: a server
// state flip, or (kill) a SIGKILL of the whole process.
type chaosEvent struct {
	at     float64
	server int
	down   bool
	kill   bool
}

// parseChaos parses "server@start[+duration]" and "kill@start" entries,
// comma-separated, into a time-ordered event list.
func parseChaos(spec string) ([]chaosEvent, error) {
	var evs []chaosEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		srvStr, when, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("chaos entry %q: want server@start[+duration] or kill@start", part)
		}
		if srvStr == "kill" {
			start, err := time.ParseDuration(when)
			if err != nil {
				return nil, fmt.Errorf("chaos entry %q: bad start: %w", part, err)
			}
			evs = append(evs, chaosEvent{at: start.Seconds(), kill: true})
			continue
		}
		server, err := strconv.Atoi(srvStr)
		if err != nil {
			return nil, fmt.Errorf("chaos entry %q: bad server: %w", part, err)
		}
		startStr, durStr, hasDur := strings.Cut(when, "+")
		start, err := time.ParseDuration(startStr)
		if err != nil {
			return nil, fmt.Errorf("chaos entry %q: bad start: %w", part, err)
		}
		evs = append(evs, chaosEvent{at: start.Seconds(), server: server, down: true})
		if hasDur {
			dur, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("chaos entry %q: bad duration: %w", part, err)
			}
			evs = append(evs, chaosEvent{at: (start + dur).Seconds(), server: server, down: false})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs, nil
}

// buildPlatform constructs the platform, durable when stateDir is set: a
// directory holding recovered state resumes through the journal replay path,
// an empty one starts fresh — callers never have to care which.
func buildPlatform(opts serverless.Options, stateDir string, snapEvery int) (*serverless.Platform, error) {
	if stateDir == "" {
		return serverless.NewPlatform(opts)
	}
	st, err := store.Open(stateDir, store.Options{Obs: opts.Obs})
	if err != nil {
		return nil, err
	}
	opts.Store = st
	opts.SnapshotEvery = snapEvery
	if st.HasState() {
		return serverless.Recover(opts)
	}
	return serverless.NewPlatform(opts)
}

// run is the whole server, factored out of main so the crash-restart e2e can
// re-exec it: parse args, build (or recover) the platform, serve until a
// signal, then flush the journal and drain. The listen address actually
// bound (addr may be ":0") is announced on stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("efserver", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	servers := fs.Int("servers", 2, "virtual servers (power of two)")
	perServer := fs.Int("gpus-per-server", 8, "GPUs per server (power of two)")
	timescale := fs.Float64("timescale", 1, "platform seconds per wall second")
	chaos := fs.String("chaos", "", "chaos schedule, e.g. 1@30s+60s,kill@90s (platform time)")
	stateDir := fs.String("state-dir", "", "directory for the durable journal + snapshots (empty: in-memory only)")
	snapEvery := fs.Int("snapshot-every", 256, "journal records between snapshots (with -state-dir; 0 disables)")
	pprofOn := fs.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	shards := fs.Int("shards", 1, "control-plane shards behind the multi-tenant front door (>1 enables it; each shard owns its own -servers × -gpus-per-server partition and WAL)")
	tenantSpec := fs.String("tenants", "", "per-tenant policy, e.g. acme:rate=100,burst=200,gpus=32;globex:gpus=16 (implies the front door)")
	batchMax := fs.Int("batch-max", 64, "max submissions one front-door admission batch may carry")
	if err := fs.Parse(args); err != nil {
		return err
	}

	schedule, err := parseChaos(*chaos)
	if err != nil {
		return err
	}

	tenants, err := frontdoor.ParseTenants(*tenantSpec)
	if err != nil {
		return err
	}
	if *shards > 1 || len(tenants) > 0 {
		if len(schedule) > 0 {
			return fmt.Errorf("efserver: -chaos targets the single-platform mode; inject per-shard failures via POST /v1/shards/{k}/v1/cluster/servers/{id}/down instead")
		}
		return runFrontDoor(frontdoor.Options{
			Shards:        *shards,
			ShardTopology: topology.Config{Servers: *servers, GPUsPerServer: *perServer},
			Tenants:       tenants,
			MaxBatch:      *batchMax,
			TimeScale:     *timescale,
			StateDir:      *stateDir,
			SnapshotEvery: *snapEvery,
		}, *addr, *pprofOn, stdout)
	}
	// The server always traces: span trails are bounded by the ring and
	// cost one mutex hop per lifecycle step, and /debug/trace is the only
	// way to reconstruct a causal history after the fact.
	p, err := buildPlatform(serverless.Options{
		Topology:  topology.Config{Servers: *servers, GPUsPerServer: *perServer},
		TimeScale: *timescale,
		Obs:       obs.New(obs.Options{Tracer: tracing.New(1)}),
	}, *stateDir, *snapEvery)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic ticks complete jobs, reschedule between API calls, and fire
	// the chaos schedule against platform time. The goroutine exits with
	// the process instead of leaking (the old time.Tick never stopped).
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				now := p.Now()
				for len(schedule) > 0 && schedule[0].at <= now {
					ev := schedule[0]
					schedule = schedule[1:]
					switch {
					case ev.kill:
						// The crash half of a durability drill: no flush, no
						// drain — the journal alone must carry the state.
						log.Printf("chaos: SIGKILL at t=%.0fs", now)
						if err := syscall.Kill(os.Getpid(), syscall.SIGKILL); err != nil {
							log.Printf("chaos: kill: %v", err)
						}
					case ev.down:
						evicted, err := p.NodeDown(ev.server)
						if err != nil {
							log.Printf("chaos: server %d down: %v", ev.server, err)
							continue
						}
						log.Printf("chaos: server %d down at t=%.0fs (evicted %d jobs)", ev.server, now, len(evicted))
					default:
						if err := p.NodeUp(ev.server); err != nil {
							log.Printf("chaos: server %d up: %v", ev.server, err)
							continue
						}
						log.Printf("chaos: server %d recovered at t=%.0fs", ev.server, now)
					}
				}
				p.Tick()
			}
		}
	}()

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		stop()
		<-tickerDone
		return err
	}
	handler := serverless.Handler(p)
	if *pprofOn {
		// The pprof handlers live on DefaultServeMux (the blank import
		// above); route only their prefix there so the platform API stays
		// the custom mux.
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(stdout, "efserver: %d GPUs, timescale %.0fx, listening on %s (metrics on /metrics, events on /debug/events, trace on /debug/trace)\n",
		*servers**perServer, *timescale, l.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		// Listener failed before any signal.
		stop()
		<-tickerDone
		return err
	case <-ctx.Done():
	}
	log.Print("efserver: shutting down")
	// Flush the journal first: from here on mutations are rejected with 503
	// (the write would not be durable), while reads keep draining below.
	if err := p.Shutdown(); err != nil {
		log.Printf("efserver: journal flush: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("efserver: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("efserver: serve: %v", err)
	}
	<-tickerDone
	return nil
}

// runFrontDoor serves the sharded multi-tenant mode: K shard platforms with
// their own WALs behind the batched admission tier (DESIGN.md §16).
func runFrontDoor(opts frontdoor.Options, addr string, pprofOn bool, stdout io.Writer) error {
	fd, err := frontdoor.New(opts)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				// The front door's scheduling epoch: advance every shard
				// and refresh the quota/capacity caches.
				fd.Tick()
			}
		}
	}()

	l, err := net.Listen("tcp", addr)
	if err != nil {
		stop()
		<-tickerDone
		return err
	}
	handler := frontdoor.Handler(fd)
	if pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		mux.Handle("/", handler)
		handler = mux
	}
	srv := &http.Server{Handler: handler}
	shards := fd.Shards()
	fmt.Fprintf(stdout, "efserver: front door over %d shard(s), %d GPUs total, listening on %s (front-door metrics on /metrics, per-shard planes on /v1/shards/{k}/)\n",
		shards, shards*opts.ShardTopology.Servers*opts.ShardTopology.GPUsPerServer, l.Addr())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		stop()
		<-tickerDone
		return err
	case <-ctx.Done():
	}
	log.Print("efserver: shutting down front door")
	// Drain batchers and flush every shard journal first, so mutations are
	// rejected with 503 while reads keep draining below.
	if err := fd.Shutdown(); err != nil {
		log.Printf("efserver: shard shutdown: %v", err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("efserver: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("efserver: serve: %v", err)
	}
	<-tickerDone
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}
