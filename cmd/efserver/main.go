// Command efserver runs the ElasticFlow serverless platform: an HTTP/JSON
// control plane over a virtual GPU cluster.
//
// Usage:
//
//	efserver [-addr :8080] [-servers 2] [-gpus-per-server 8] [-timescale 1]
//
// Submit a training function with:
//
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "model": "resnet50", "global_batch": 128,
//	  "iterations": 100000, "deadline_seconds": 3600}'
//
// Observability: GET /metrics serves Prometheus text exposition and
// GET /debug/events?since=<seq> the structured scheduler event log.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"github.com/elasticflow/elasticflow/internal/serverless"
	"github.com/elasticflow/elasticflow/internal/topology"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	servers := flag.Int("servers", 2, "virtual servers (power of two)")
	perServer := flag.Int("gpus-per-server", 8, "GPUs per server (power of two)")
	timescale := flag.Float64("timescale", 1, "platform seconds per wall second")
	flag.Parse()

	p, err := serverless.NewPlatform(serverless.Options{
		Topology:  topology.Config{Servers: *servers, GPUsPerServer: *perServer},
		TimeScale: *timescale,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Periodic ticks complete jobs and reschedule between API calls.
	go func() {
		for range time.Tick(time.Second) {
			p.Tick()
		}
	}()
	fmt.Printf("efserver: %d GPUs, timescale %.0fx, listening on %s (metrics on /metrics, events on /debug/events)\n", *servers**perServer, *timescale, *addr)
	log.Fatal(http.ListenAndServe(*addr, serverless.Handler(p)))
}
