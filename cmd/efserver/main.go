// Command efserver runs the ElasticFlow serverless platform: an HTTP/JSON
// control plane over a virtual GPU cluster.
//
// Usage:
//
//	efserver [-addr :8080] [-servers 2] [-gpus-per-server 8] [-timescale 1]
//	         [-chaos 1@30s+60s]
//
// Submit a training function with:
//
//	curl -X POST localhost:8080/v1/jobs -d '{
//	  "model": "resnet50", "global_batch": 128,
//	  "iterations": 100000, "deadline_seconds": 3600}'
//
// -chaos takes a comma-separated failure schedule in platform time:
// "1@30s+60s" fails server 1 at t=30s and recovers it 60s later (omit the
// +duration to leave it down). Server failures are also injectable at
// runtime via POST /v1/cluster/servers/{id}/down and .../up.
//
// Observability: GET /metrics serves Prometheus text exposition and
// GET /debug/events?since=<seq> the structured scheduler event log.
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/elasticflow/elasticflow/internal/serverless"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// chaosEvent is one scheduled server state flip, in platform seconds.
type chaosEvent struct {
	at     float64
	server int
	down   bool
}

// parseChaos parses "server@start[+duration]" entries, comma-separated,
// into a time-ordered event list.
func parseChaos(spec string) ([]chaosEvent, error) {
	var evs []chaosEvent
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		srvStr, when, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("chaos entry %q: want server@start[+duration]", part)
		}
		server, err := strconv.Atoi(srvStr)
		if err != nil {
			return nil, fmt.Errorf("chaos entry %q: bad server: %w", part, err)
		}
		startStr, durStr, hasDur := strings.Cut(when, "+")
		start, err := time.ParseDuration(startStr)
		if err != nil {
			return nil, fmt.Errorf("chaos entry %q: bad start: %w", part, err)
		}
		evs = append(evs, chaosEvent{at: start.Seconds(), server: server, down: true})
		if hasDur {
			dur, err := time.ParseDuration(durStr)
			if err != nil {
				return nil, fmt.Errorf("chaos entry %q: bad duration: %w", part, err)
			}
			evs = append(evs, chaosEvent{at: (start + dur).Seconds(), server: server, down: false})
		}
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
	return evs, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	servers := flag.Int("servers", 2, "virtual servers (power of two)")
	perServer := flag.Int("gpus-per-server", 8, "GPUs per server (power of two)")
	timescale := flag.Float64("timescale", 1, "platform seconds per wall second")
	chaos := flag.String("chaos", "", "server failure schedule, e.g. 1@30s+60s (platform time)")
	flag.Parse()

	schedule, err := parseChaos(*chaos)
	if err != nil {
		log.Fatal(err)
	}
	p, err := serverless.NewPlatform(serverless.Options{
		Topology:  topology.Config{Servers: *servers, GPUsPerServer: *perServer},
		TimeScale: *timescale,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Periodic ticks complete jobs, reschedule between API calls, and fire
	// the chaos schedule against platform time. The goroutine exits with
	// the process instead of leaking (the old time.Tick never stopped).
	tickerDone := make(chan struct{})
	go func() {
		defer close(tickerDone)
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				now := p.Now()
				for len(schedule) > 0 && schedule[0].at <= now {
					ev := schedule[0]
					schedule = schedule[1:]
					if ev.down {
						evicted, err := p.NodeDown(ev.server)
						if err != nil {
							log.Printf("chaos: server %d down: %v", ev.server, err)
							continue
						}
						log.Printf("chaos: server %d down at t=%.0fs (evicted %d jobs)", ev.server, now, len(evicted))
					} else {
						if err := p.NodeUp(ev.server); err != nil {
							log.Printf("chaos: server %d up: %v", ev.server, err)
							continue
						}
						log.Printf("chaos: server %d recovered at t=%.0fs", ev.server, now)
					}
				}
				p.Tick()
			}
		}
	}()

	srv := &http.Server{Addr: *addr, Handler: serverless.Handler(p)}
	fmt.Printf("efserver: %d GPUs, timescale %.0fx, listening on %s (metrics on /metrics, events on /debug/events)\n",
		*servers**perServer, *timescale, *addr)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		// Listener failed before any signal (e.g. port in use).
		stop()
		<-tickerDone
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("efserver: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("efserver: shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("efserver: serve: %v", err)
	}
	<-tickerDone
}
