package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/elasticflow/elasticflow/internal/serverless"
)

// TestMain doubles as the child entry point of the crash-restart e2e: when
// the env marker is set, the test binary runs the real server instead of the
// test suite — the same re-exec idiom exec tests use.
func TestMain(m *testing.M) {
	if os.Getenv("EFSERVER_E2E_CHILD") == "1" {
		if err := run(strings.Fields(os.Getenv("EFSERVER_E2E_ARGS")), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestParseChaos(t *testing.T) {
	evs, err := parseChaos("1@30s+60s,kill@90s")
	if err != nil {
		t.Fatal(err)
	}
	want := []chaosEvent{
		{at: 30, server: 1, down: true},
		{at: 90, server: 1, down: false},
		{at: 90, kill: true},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, ev := range evs {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	for _, bad := range []string{"kill", "kill@", "x@30s", "1@30s+x", "1@"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("parseChaos(%q) accepted garbage", bad)
		}
	}
}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// startChild re-execs the test binary as an efserver with the given args and
// returns the command plus the address it bound.
func startChild(t *testing.T, args string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "EFSERVER_E2E_CHILD=1", "EFSERVER_E2E_ARGS="+args)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if m := listenRe.FindStringSubmatch(sc.Text()); m != nil {
			// Keep draining stdout so the child never blocks on a full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return cmd, m[1]
		}
	}
	_ = cmd.Process.Kill()
	t.Fatalf("child exited without announcing a listen address")
	return nil, ""
}

func getJobs(t *testing.T, addr string) []serverless.JobStatus {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jobs []serverless.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestCrashRestartEndToEnd is the full durability drill over the real
// binary: a server journaling into -state-dir is SIGKILLed mid-run by its
// own chaos schedule, a second incarnation recovers from the same directory,
// and the job admitted before the crash must complete within its original
// deadline — an acknowledged admission survives the kill with its guarantee
// intact.
func TestCrashRestartEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("crash-restart e2e spawns real processes")
	}
	dir := t.TempDir()
	base := "-addr 127.0.0.1:0 -servers 2 -gpus-per-server 4 -timescale 50 -snapshot-every 64 -state-dir " + dir

	child1, addr := startChild(t, base+" -chaos kill@150s")
	defer func() { _ = child1.Process.Kill() }()

	// Admit one SLO job before the kill fires (t=150s platform = 3s wall).
	body, _ := json.Marshal(serverless.SubmitRequest{
		Model: "resnet50", GlobalBatch: 64, Iterations: 2000, DeadlineSeconds: 600,
	})
	resp, err := http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var admitted serverless.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d, job %+v", resp.StatusCode, admitted)
	}

	// The chaos schedule SIGKILLs the child: no flush, no drain.
	err = child1.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child exited cleanly (%v), expected SIGKILL", err)
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("child died of %v, expected SIGKILL", ee)
	}

	// Restart against the same state directory: the journal alone must
	// reconstruct the admission.
	child2, addr2 := startChild(t, base)
	defer func() { _ = child2.Process.Kill() }()

	jobs := getJobs(t, addr2)
	if len(jobs) != 1 || jobs[0].ID != admitted.ID {
		t.Fatalf("recovered jobs = %+v, want exactly %s", jobs, admitted.ID)
	}
	if jobs[0].State == "dropped" {
		t.Fatal("recovery revoked the admitted job")
	}
	if jobs[0].Deadline != admitted.Deadline {
		t.Fatalf("deadline changed across restart: %v → %v", admitted.Deadline, jobs[0].Deadline)
	}

	// The admitted deadline must still be met. Platform time froze during
	// the downtime, so the full budget remains; poll until completion.
	deadline := time.Now().Add(30 * time.Second)
	for {
		jobs = getJobs(t, addr2)
		if len(jobs) == 1 && jobs[0].State == "completed" {
			if jobs[0].Completion > jobs[0].Deadline {
				t.Fatalf("job completed at t=%.0fs, after its deadline t=%.0fs", jobs[0].Completion, jobs[0].Deadline)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed after restart: %+v", jobs)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Graceful shutdown of the second incarnation flushes cleanly.
	if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := child2.Wait(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
}

// TestPprofAndTraceEndpoints: -pprof gates the profiling handlers (absent
// by default — profiling on a control plane is an operator opt-in), while
// /debug/trace always serves the span trail as Chrome trace-event JSON.
func TestPprofAndTraceEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("endpoint e2e spawns real processes")
	}
	stopChild := func(c *exec.Cmd) {
		_ = c.Process.Signal(syscall.SIGTERM)
		_ = c.Wait()
	}

	child, addr := startChild(t, "-addr 127.0.0.1:0 -servers 2 -gpus-per-server 4 -pprof")
	defer stopChild(child)

	resp, err := http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("-pprof: /debug/pprof/cmdline status = %d, want 200", resp.StatusCode)
	}

	// A submission populates the span trail; /debug/trace serves it in
	// trace-event form with the job's lifecycle root present.
	body, _ := json.Marshal(serverless.SubmitRequest{
		Model: "resnet50", GlobalBatch: 64, Iterations: 2000, DeadlineSeconds: 600,
	})
	resp, err = http.Post("http://"+addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var admitted serverless.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&admitted); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get("http://" + addr + "/debug/trace?job=" + admitted.ID)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, ev := range trace.TraceEvents {
		if ev.Name == "job.lifecycle" {
			found = true
		}
	}
	if !found {
		t.Errorf("/debug/trace has no job.lifecycle event for %s: %+v", admitted.ID, trace.TraceEvents)
	}
	stopChild(child)

	// Without the flag the profiling surface does not exist.
	child2, addr2 := startChild(t, "-addr 127.0.0.1:0 -servers 2 -gpus-per-server 4")
	defer stopChild(child2)
	resp, err = http.Get("http://" + addr2 + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("pprof served without -pprof")
	}
}
