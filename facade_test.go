package elasticflow_test

import (
	"math"
	"testing"
	"time"

	elasticflow "github.com/elasticflow/elasticflow"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// TestPublicAPISchedulers: every documented scheduler name resolves and the
// unknown name errors.
func TestPublicAPISchedulers(t *testing.T) {
	for _, name := range elasticflow.SchedulerNames() {
		s, err := elasticflow.SchedulerByName(name)
		if err != nil {
			t.Errorf("SchedulerByName(%q): %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%q: empty scheduler name", name)
		}
	}
	if _, err := elasticflow.SchedulerByName("slurm"); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if s, err := elasticflow.SchedulerByName("ef"); err != nil || s.Name() != "elasticflow" {
		t.Errorf("alias ef -> %v, %v", s, err)
	}
}

// TestPublicAPIEndToEnd drives the facade the way the README advertises:
// generate a workload, simulate it under two schedulers, compare.
func TestPublicAPIEndToEnd(t *testing.T) {
	hw := elasticflow.DefaultHardware()
	est := elasticflow.NewEstimator(hw)
	prof := elasticflow.NewProfiler(est, 8, 64)

	tr := elasticflow.GenerateTrace(elasticflow.TraceConfig{
		Name: "facade", Jobs: 30, ClusterGPUs: 32, Load: 1.5, Seed: 99,
	})
	if len(elasticflow.ModelCatalog()) != 6 {
		t.Fatal("model catalog incomplete")
	}

	results := map[string]elasticflow.SimResult{}
	for _, name := range []string{"elasticflow", "gandiva"} {
		s, err := elasticflow.SchedulerByName(name)
		if err != nil {
			t.Fatal(err)
		}
		jobs, err := tr.Jobs(prof, est)
		if err != nil {
			t.Fatal(err)
		}
		res, err := elasticflow.Simulate(elasticflow.SimConfig{
			Topology:  elasticflow.Topology{Servers: 4, GPUsPerServer: 8},
			Scheduler: s,
		}, jobs, tr.Name)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = res
	}
	if results["elasticflow"].DeadlineSatisfactoryRatio() <= results["gandiva"].DeadlineSatisfactoryRatio() {
		t.Errorf("facade run lost the headline comparison: %v vs %v",
			results["elasticflow"].DeadlineSatisfactoryRatio(), results["gandiva"].DeadlineSatisfactoryRatio())
	}
}

// TestPublicAPIPlatformWithPolicies wires quotas and pricing through the
// public surface.
func TestPublicAPIPlatformWithPolicies(t *testing.T) {
	quota := elasticflow.NewUserQuota(1, 3600)
	budget := elasticflow.NewBudget(elasticflow.Pricing{RatePerGPUHour: 1, UrgencyPremium: 0.5})
	budget.Grant("amy", 1e6)

	clock := time.Unix(0, 0)
	p, err := elasticflow.NewPlatform(elasticflow.PlatformOptions{
		Topology: topology.Config{Servers: 2, GPUsPerServer: 8},
		Scheduler: elasticflow.NewScheduler(elasticflow.SchedulerOptions{
			PowerOfTwo: true,
			Quota:      elasticflow.ChainPolicies(quota, budget),
		}),
		Clock: func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	req := elasticflow.SubmitRequest{
		User: "amy", Model: "bert", GlobalBatch: 128,
		Iterations: 10000, DeadlineSeconds: 7200,
	}
	st, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == "dropped" {
		t.Fatalf("first submission dropped: %+v", st)
	}
	if budget.Balance("amy") >= 1e6 {
		t.Error("pricing did not charge the user")
	}
	st2, err := p.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != "dropped" {
		t.Error("user quota not enforced through the facade")
	}
}

// TestPublicAPIClusterAndFailures covers the remaining facade surface.
func TestPublicAPIClusterAndFailures(t *testing.T) {
	c, err := elasticflow.NewCluster(elasticflow.Topology{Servers: 2, GPUsPerServer: 8})
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalGPUs() != 16 {
		t.Errorf("TotalGPUs=%d", c.TotalGPUs())
	}
	s, err := elasticflow.SchedulerByName("elasticflow")
	if err != nil {
		t.Fatal(err)
	}
	j := &elasticflow.Job{
		ID: "f", GlobalBatch: 64, TotalIters: 1000, Deadline: math.Inf(1),
		Class: elasticflow.BestEffort, MinGPUs: 1, MaxGPUs: 8,
	}
	prof, _, err := elasticflow.NewProfiler(elasticflow.NewEstimator(elasticflow.DefaultHardware()), 8, 8).
		Profile(elasticflow.ModelCatalog()[0], 64)
	if err != nil {
		t.Fatal(err)
	}
	j.Curve = prof.Curve
	res, err := elasticflow.Simulate(elasticflow.SimConfig{
		Topology:  elasticflow.Topology{Servers: 2, GPUsPerServer: 8},
		Scheduler: s,
		Failures:  []elasticflow.NodeFailure{{Server: 0, StartSec: 1, DurationSec: 10}},
	}, []*elasticflow.Job{j}, "facade-failures")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Jobs[0].Finished {
		t.Error("job did not survive the injected failure")
	}
}
