// Package elasticflow is a from-scratch Go reproduction of "ElasticFlow: An
// Elastic Serverless Training Platform for Distributed Deep Learning"
// (ASPLOS 2023).
//
// The implementation lives under internal/ (one package per subsystem — see
// DESIGN.md for the inventory), runnable binaries under cmd/, and usage
// examples under examples/. The benchmarks in bench_test.go regenerate every
// table and figure of the paper's evaluation; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package elasticflow
