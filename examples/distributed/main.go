// Distributed runs the worker-agent control plane for real: two agent
// processes (in-process here, but speaking net/rpc over TCP exactly as they
// would across machines), a controller that launches a serverless training
// function, rescales it elastically, and migrates it between agents by
// shipping checkpoints — the §5 mechanics end to end.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/elasticflow/elasticflow/internal/agent"
)

func main() {
	// Two "servers", each running an agent on an ephemeral TCP port.
	ctrl := agent.NewController()
	defer ctrl.Close()
	for _, name := range []string{"server-0", "server-1"} {
		a := agent.NewAgent(name)
		addr, stop, err := a.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
		if err := ctrl.Connect(name, addr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agent %s listening on %s\n", name, addr)
	}

	// The serverless function: a model, hyperparameters and a
	// termination condition — no worker counts.
	spec := agent.TaskSpec{
		Dim: 8, DataSeed: 42, DataN: 1024, Noise: 0.02,
		GlobalBatch: 128, LearningRate: 0.1, InitSeed: 7,
		TotalIters: 150,
	}

	rep, err := ctrl.Launch("train-1", spec, "server-0", 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlaunched on server-0: %d workers, local batch %d\n", rep.Workers, rep.LocalBatch)
	if _, err := ctrl.Step("train-1", 50); err != nil {
		log.Fatal(err)
	}

	// The scheduler decides more GPUs are free: scale out in place.
	rep, err = ctrl.Rescale("train-1", 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rescaled in place:    %d workers, local batch %d (resumed at step %d)\n", rep.Workers, rep.LocalBatch, rep.Step)
	if _, err := ctrl.Step("train-1", 50); err != nil {
		log.Fatal(err)
	}

	// Buddy defragmentation wants this job elsewhere: migrate the
	// checkpoint to the other agent.
	rep, err = ctrl.Migrate("train-1", "server-1", 4)
	if err != nil {
		log.Fatal(err)
	}
	home, _ := ctrl.Home("train-1")
	fmt.Printf("migrated to %s:  %d workers (checkpoint moved over RPC, step %d)\n", home, rep.Workers, rep.Step)
	if _, err := ctrl.Step("train-1", 50); err != nil {
		log.Fatal(err)
	}

	st, err := ctrl.Status("train-1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinished: step %d, loss %.6f, done=%v\n", st.Step, st.Loss, st.Done)

	// Prove the control-plane events never touched the math: an
	// undisturbed local run lands on the same loss.
	ck, err := ctrl.Stop("train-1")
	if err != nil {
		log.Fatal(err)
	}
	ref := referenceRun(spec)
	diff := 0.0
	for i := range ck.Params {
		if d := math.Abs(ck.Params[i] - ref[i]); d > diff {
			diff = d
		}
	}
	fmt.Printf("max parameter difference vs undisturbed run: %.2e\n", diff)
}

func referenceRun(spec agent.TaskSpec) []float64 {
	// Re-train without any rescale/migration, any fixed worker count.
	ctrl := agent.NewController()
	defer ctrl.Close()
	a := agent.NewAgent("ref")
	addr, stop, err := a.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	if err := ctrl.Connect("ref", addr); err != nil {
		log.Fatal(err)
	}
	if _, err := ctrl.Launch("ref-job", spec, "ref", 4); err != nil {
		log.Fatal(err)
	}
	if _, err := ctrl.Step("ref-job", spec.TotalIters); err != nil {
		log.Fatal(err)
	}
	ck, err := ctrl.Stop("ref-job")
	if err != nil {
		log.Fatal(err)
	}
	return ck.Params
}
