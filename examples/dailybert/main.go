// Dailybert reproduces the paper's motivating scenario (§1): a production
// team fine-tunes BERT on fresh data every day and must have the model
// onboarded before the daily release. The example compares how ElasticFlow
// and deadline-unaware schedulers handle the recurring deadline job amid a
// background of ad-hoc research jobs.
//
//	go run ./examples/dailybert
package main

import (
	"fmt"
	"log"

	"github.com/elasticflow/elasticflow/internal/baselines"
	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/sched"
	"github.com/elasticflow/elasticflow/internal/sim"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
	"github.com/elasticflow/elasticflow/internal/trace"
)

const day = 24 * 3600.0

func buildWorkload() ([]*job.Job, error) {
	hw := model.DefaultA100()
	est := throughput.NewEstimator(hw)
	prof := throughput.NewProfiler(est, 8, 64)

	// Background research jobs: a 3-day production-style trace.
	tr := trace.Generate(trace.Config{
		Name: "background", Jobs: 60, ClusterGPUs: 64, Load: 0.9, Seed: 17,
	})
	jobs, err := tr.Jobs(prof, est)
	if err != nil {
		return nil, err
	}

	// The daily BERT fine-tune: submitted at 08:00 each day, must finish
	// by 16:00 the same day (an 8-hour window) for the evening release.
	bert := model.MustByName("bert")
	p, _, err := prof.Profile(bert, 128)
	if err != nil {
		return nil, err
	}
	// Size the job to ~5 hours on 4 GPUs, so elasticity matters under
	// contention.
	iters := p.Curve.At(4) * 5 * 3600
	for d := 0; d < 3; d++ {
		submit := float64(d)*day + 8*3600
		j := &job.Job{
			ID:                 fmt.Sprintf("daily-bert-%d", d+1),
			Model:              bert,
			GlobalBatch:        128,
			TotalIters:         iters,
			SubmitTime:         submit,
			Deadline:           submit + 8*3600,
			Class:              job.SLO,
			Curve:              p.Curve,
			MinGPUs:            p.MinGPUs,
			MaxGPUs:            p.MaxGPUs,
			RequestedGPUs:      4,
			RescaleOverheadSec: est.RescaleOverhead(bert),
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func main() {
	schedulers := []sched.Scheduler{
		core.NewDefault(),
		baselines.Gandiva{},
		baselines.Tiresias{},
	}
	fmt.Println("Daily BERT fine-tune with an 8-hour deadline, 64-GPU cluster, 3 days")
	fmt.Println()
	for _, s := range schedulers {
		jobs, err := buildWorkload()
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(sim.Config{
			Topology:  topology.Config{Servers: 8, GPUsPerServer: 8},
			Scheduler: s,
		}, jobs, "dailybert")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", s.Name())
		for _, jr := range res.Jobs {
			if len(jr.ID) < 10 || jr.ID[:10] != "daily-bert" {
				continue
			}
			switch {
			case jr.Dropped:
				fmt.Printf("  %s: dropped at submission (deadline not guaranteeable)\n", jr.ID)
			case !jr.Finished:
				fmt.Printf("  %s: never finished\n", jr.ID)
			default:
				verdict := "on time for the release"
				if !jr.Met {
					verdict = fmt.Sprintf("LATE by %.1fh — release slips", (jr.Completion-jr.Deadline)/3600)
				}
				fmt.Printf("  %s: finished %.1fh after submission — %s\n", jr.ID, jr.JCT()/3600, verdict)
			}
		}
		fmt.Printf("  overall deadline satisfactory ratio: %.2f\n\n", res.DeadlineSatisfactoryRatio())
	}
}
