// Elastictrain drives the elastic training executor directly (§5): it
// trains a small model with synchronous data-parallel SGD, rescales the
// worker pool mid-training twice, and verifies that the trajectory matches
// a fixed-worker run — the invariant that makes elastic scaling safe.
//
//	go run ./examples/elastictrain
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/elasticflow/elasticflow/internal/elastic"
)

func main() {
	data, trueW := elastic.SyntheticRegression(42, 1024, 8, 0.02)
	cfg := elastic.Config{
		Model:        elastic.LinearRegression{Dim: 8},
		Data:         data,
		GlobalBatch:  128,
		LearningRate: 0.1,
		Workers:      2,
		Seed:         7,
	}

	// Reference run: fixed 2 workers for 120 steps.
	ref, err := elastic.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := ref.Steps(120); err != nil {
		log.Fatal(err)
	}

	// Elastic run: same config, but the scheduler "changes its mind"
	// twice — exactly what happens when ElasticFlow scales a job.
	tr, err := elastic.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("start:     %d workers, local batch %d, loss %.4f\n", tr.Workers(), tr.LocalBatch(), tr.Loss())
	if err := tr.Steps(40); err != nil {
		log.Fatal(err)
	}

	ck, err := tr.Rescale(8) // scale out: more GPUs became free
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step %3d:  rescaled to %d workers (checkpoint of %d params taken), local batch now %d\n",
		ck.Step, tr.Workers(), len(ck.Params), tr.LocalBatch())
	if err := tr.Steps(50); err != nil {
		log.Fatal(err)
	}

	if _, err := tr.Rescale(4); err != nil { // scale in: contention arrived
		log.Fatal(err)
	}
	fmt.Printf("step %3d:  rescaled to %d workers, local batch now %d\n", tr.Step(), tr.Workers(), tr.LocalBatch())
	if err := tr.Steps(30); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("finish:    step %d, loss %.6f (%d rescales)\n", tr.Step(), tr.Loss(), tr.Rescales())

	// The global batch never changed, so the trajectory is identical.
	maxDiff := 0.0
	for i, w := range ref.Params() {
		if d := math.Abs(w - tr.Params()[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax parameter difference vs fixed-worker run: %.2e (same trajectory)\n", maxDiff)

	// And the model actually learned the generating weights.
	worst := 0.0
	for i, w := range trueW {
		if d := math.Abs(w - tr.Params()[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("max error vs true generating weights:          %.3f\n", worst)
}
