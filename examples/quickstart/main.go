// Quickstart: run an in-process ElasticFlow platform, submit a handful of
// training functions the serverless way (no GPU counts!), and watch
// admission control and elastic scaling react.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/elasticflow/elasticflow/internal/serverless"
	"github.com/elasticflow/elasticflow/internal/topology"
)

func main() {
	// A virtual 16-GPU cluster (2 servers × 8 A100s) running 600×
	// faster than wall time so the demo finishes in seconds.
	start := time.Now()
	platform, err := serverless.NewPlatform(serverless.Options{
		Topology:  topology.Config{Servers: 2, GPUsPerServer: 8},
		TimeScale: 600,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Submit three jobs. Note the interface of §3.1: model,
	// hyperparameters, termination condition and deadline — never a
	// GPU count.
	submissions := []serverless.SubmitRequest{
		{Model: "resnet50", GlobalBatch: 256, Iterations: 200_000, DeadlineSeconds: 2 * 3600},
		{Model: "bert", GlobalBatch: 128, Iterations: 60_000, DeadlineSeconds: 1 * 3600},
		{Model: "vgg16", GlobalBatch: 256, Iterations: 5_000_000, DeadlineSeconds: 600}, // hopeless
	}
	var ids []string
	for _, req := range submissions {
		st, err := platform.Submit(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("submitted %-9s deadline=%5.0fs -> %s (%s", req.Model, req.DeadlineSeconds, st.ID, st.State)
		if st.State == "dropped" {
			fmt.Printf(": admission control cannot guarantee this deadline")
		} else {
			fmt.Printf(", %d GPUs, local batch %d", st.GPUs, st.LocalBatch)
		}
		fmt.Println(")")
		ids = append(ids, st.ID)
	}

	// Watch the platform until everything admitted completes.
	for tick := 0; tick < 100; tick++ {
		time.Sleep(200 * time.Millisecond)
		platform.Tick()
		cs := platform.Cluster()
		if cs.Admitted == 0 {
			break
		}
		if tick%5 == 0 {
			fmt.Printf("t=%6.0fs  running=%d  free GPUs=%d/%d\n",
				cs.PlatformSec, cs.Running, cs.FreeGPUs, cs.TotalGPUs)
		}
	}

	fmt.Println("\nfinal job states:")
	for _, id := range ids {
		st, err := platform.Get(id)
		if err != nil {
			log.Fatal(err)
		}
		line := fmt.Sprintf("  %s %-9s %-9s", st.ID, st.Model, st.State)
		if st.State == "completed" {
			met := "MET deadline"
			if st.Deadline > 0 && st.Completion > st.Deadline {
				met = "MISSED deadline"
			}
			line += fmt.Sprintf(" at t=%.0fs (%s)", st.Completion, met)
		}
		fmt.Println(line)
	}
	fmt.Printf("\n(demo wall time: %.1fs)\n", time.Since(start).Seconds())
}
