// Besteffort demonstrates the unified SLO + best-effort scheduling of §4.4:
// SLO jobs keep their guarantees while best-effort jobs soak up leftover
// capacity and finish as early as possible.
//
//	go run ./examples/besteffort
package main

import (
	"fmt"
	"log"

	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/sim"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
	"github.com/elasticflow/elasticflow/internal/trace"
)

func main() {
	hw := model.DefaultA100()
	est := throughput.NewEstimator(hw)
	prof := throughput.NewProfiler(est, 8, 64)

	// A mixed workload: 70% SLO jobs, 30% best-effort.
	tr := trace.Generate(trace.Config{
		Name: "mixed", Jobs: 50, ClusterGPUs: 64, Load: 1.2,
		BestEffortFraction: 0.3, Seed: 23,
	})
	jobs, err := tr.Jobs(prof, est)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Topology:  topology.Config{Servers: 8, GPUsPerServer: 8},
		Scheduler: core.NewDefault(),
		SampleSec: 600,
	}, jobs, tr.Name)
	if err != nil {
		log.Fatal(err)
	}

	sloTotal, sloMet, beTotal, beDone := 0, 0, 0, 0
	var beJCT float64
	for _, jr := range res.Jobs {
		if jr.Class.String() == "best-effort" {
			beTotal++
			if jr.Finished {
				beDone++
				beJCT += jr.JCT()
			}
			continue
		}
		sloTotal++
		if jr.Met {
			sloMet++
		}
	}
	fmt.Printf("cluster: 64 GPUs, %d jobs (%d SLO, %d best-effort)\n\n", len(res.Jobs), sloTotal, beTotal)
	fmt.Printf("SLO jobs:         %d/%d met their deadlines (%.0f%%)\n", sloMet, sloTotal, 100*float64(sloMet)/float64(sloTotal))
	fmt.Printf("best-effort jobs: %d/%d finished, average JCT %.1fh\n", beDone, beTotal, beJCT/float64(beDone)/3600)
	fmt.Printf("cluster efficiency (Eq. 8, time-weighted): %.3f\n", res.AvgClusterEfficiency())
	fmt.Printf("makespan: %.1fh, %d rescale events\n", res.Makespan/3600, res.Rescales)
	fmt.Println("\nBest-effort jobs never blocked an SLO guarantee: the minimum")
	fmt.Println("satisfactory shares of admitted SLO jobs are reserved first, and")
	fmt.Println("best-effort jobs receive the remaining capacity (§4.4).")
}
