package elasticflow_test

import (
	"fmt"
	"testing"

	"github.com/elasticflow/elasticflow/internal/allreduce"
	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/experiments"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/plan"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// benchExperiment wraps one paper experiment as a benchmark. Quick mode
// keeps `go test -bench=.` tractable; run cmd/efbench for the full scales.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	gen := experiments.Registry[id]
	if gen == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table, err := gen(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// One benchmark per table and figure of the paper's evaluation (§6).

func BenchmarkTable1ModelPool(b *testing.B)           { benchExperiment(b, "table1") }
func BenchmarkFig2aScalingCurves(b *testing.B)        { benchExperiment(b, "fig2a") }
func BenchmarkFig2bPlacementThroughput(b *testing.B)  { benchExperiment(b, "fig2b") }
func BenchmarkFig3MotivatingExample(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig6aTestbedSmall(b *testing.B)         { benchExperiment(b, "fig6a") }
func BenchmarkFig6bTestbedLarge(b *testing.B)         { benchExperiment(b, "fig6b") }
func BenchmarkFig7aAllocationTimeline(b *testing.B)   { benchExperiment(b, "fig7a") }
func BenchmarkFig7bAdmissionTimeline(b *testing.B)    { benchExperiment(b, "fig7b") }
func BenchmarkFig8aSimulationWithPollux(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8bAllTraces(b *testing.B)            { benchExperiment(b, "fig8b") }
func BenchmarkFig9Ablation(b *testing.B)              { benchExperiment(b, "fig9") }
func BenchmarkFig10ClusterEfficiency(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11BestEffort(b *testing.B)           { benchExperiment(b, "fig11") }
func BenchmarkFig12aProfilingOverhead(b *testing.B)   { benchExperiment(b, "fig12a") }
func BenchmarkFig12bScalingOverhead(b *testing.B)     { benchExperiment(b, "fig12b") }

func BenchmarkFidelitySimVsLive(b *testing.B) { benchExperiment(b, "fidelity") }
func BenchmarkScaleSweep(b *testing.B)        { benchExperiment(b, "scale") }
func BenchmarkStoreDurability(b *testing.B)   { benchExperiment(b, "store") }

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblationIncrement(b *testing.B) { benchExperiment(b, "abl-increment") }
func BenchmarkAblationOverhead(b *testing.B)  { benchExperiment(b, "abl-overhead") }
func BenchmarkAblationSlot(b *testing.B)      { benchExperiment(b, "abl-slot") }
func BenchmarkAblationCurves(b *testing.B)    { benchExperiment(b, "abl-curves") }
func BenchmarkAblationReserve(b *testing.B)   { benchExperiment(b, "abl-reserve") }
func BenchmarkAblationPlacement(b *testing.B) { benchExperiment(b, "abl-placement") }

// Micro-benchmarks of the core machinery.

func benchJobs(n, gpus int) []*job.Job {
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.8, 4: 3.1, 8: 4.8, 16: 6.2, 32: 7.1})
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID:          fmt.Sprintf("j%03d", i),
			GlobalBatch: 64,
			TotalIters:  float64(1000 + 137*i%5000),
			SubmitTime:  0,
			Deadline:    float64(1800 + 211*i%14000),
			Class:       job.SLO,
			Curve:       curve,
			MinGPUs:     1,
			MaxGPUs:     32,
		}
	}
	return jobs
}

// BenchmarkAdmissionControl measures Algorithm 1 from scratch on a loaded
// 128-GPU cluster (plan cache off: every iteration re-fills both passes).
func BenchmarkAdmissionControl(b *testing.B) {
	ef := core.New(core.Options{PowerOfTwo: true, DisablePlanCache: true})
	jobs := benchJobs(64, 128)
	cand := jobs[len(jobs)-1]
	active := jobs[:len(jobs)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef.Admit(0, cand, active, 128)
	}
}

// BenchmarkAdmissionControlCached is the same decision on the steady-state
// path: an unchanged job set hits the plan cache, the common case for a
// platform re-checking admissions under heavy traffic.
func BenchmarkAdmissionControlCached(b *testing.B) {
	ef := core.NewDefault()
	jobs := benchJobs(64, 128)
	cand := jobs[len(jobs)-1]
	active := jobs[:len(jobs)-1]
	ef.Admit(0, cand, active, 128) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef.Admit(0, cand, active, 128)
	}
}

// BenchmarkResourceAllocation measures Algorithm 2 (Schedule) with 64 jobs,
// plans computed from scratch (plan cache off).
func BenchmarkResourceAllocation(b *testing.B) {
	ef := core.New(core.Options{PowerOfTwo: true, DisablePlanCache: true})
	jobs := benchJobs(64, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef.Schedule(0, jobs, 128)
	}
}

// BenchmarkResourceAllocationCached measures the steady-state Schedule tick:
// nothing changed since the last call, so the fill pass is pure cache hits
// and only the greedy spare-capacity phase runs live.
func BenchmarkResourceAllocationCached(b *testing.B) {
	ef := core.NewDefault()
	jobs := benchJobs(64, 128)
	ef.Schedule(0, jobs, 128) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef.Schedule(0, jobs, 128)
	}
}

// BenchmarkProgressiveFilling measures one Fill over a long horizon.
func BenchmarkProgressiveFilling(b *testing.B) {
	curve := throughput.MustCurve(map[int]float64{1: 1, 2: 1.8, 4: 3.1, 8: 4.8})
	d := plan.Demand{Curve: curve, Remaining: 5000, DeadlineSlot: 1440, MinGPUs: 1, MaxGPUs: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := plan.NewFiller(128, 60, true)
		f.Fill(d)
	}
}

// BenchmarkBuddyAllocate measures buddy allocation/release cycles.
func BenchmarkBuddyAllocate(b *testing.B) {
	c, err := topology.New(topology.Config{Servers: 16, GPUsPerServer: 8})
	if err != nil {
		b.Fatal(err)
	}
	sizes := []int{1, 2, 4, 8, 16}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("b%d", i)
		if _, err := c.Allocate(id, sizes[i%len(sizes)]); err != nil {
			// Cluster full: drain it and continue.
			b.StopTimer()
			for jid := range c.Placements() {
				if err := c.Release(jid); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			continue
		}
	}
}

// BenchmarkRingAllReduce measures the executor's collective on 8 workers.
func BenchmarkRingAllReduce(b *testing.B) {
	const workers, size = 8, 4096
	bufs := make([][]float64, workers)
	for r := range bufs {
		bufs[r] = make([]float64, size)
		for i := range bufs[r] {
			bufs[r][i] = float64(r + i)
		}
	}
	b.ReportAllocs()
	b.SetBytes(int64(size * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := allreduce.Run(workers, func(g *allreduce.Group, rank int) error {
			return g.AllReduce(rank, bufs[rank])
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughputEstimate measures the analytic performance model.
func BenchmarkThroughputEstimate(b *testing.B) {
	est := throughput.NewEstimator(model.DefaultA100())
	spec := model.MustByName("bert")
	p := throughput.BestPlacement(16, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := est.IterTime(spec, 128, p); err != nil {
			b.Fatal(err)
		}
	}
}
