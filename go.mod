module github.com/elasticflow/elasticflow

go 1.22
