package elasticflow

import (
	"fmt"
	"net/http"

	"github.com/elasticflow/elasticflow/internal/baselines"
	"github.com/elasticflow/elasticflow/internal/core"
	"github.com/elasticflow/elasticflow/internal/job"
	"github.com/elasticflow/elasticflow/internal/model"
	"github.com/elasticflow/elasticflow/internal/policy"
	"github.com/elasticflow/elasticflow/internal/sched"
	"github.com/elasticflow/elasticflow/internal/serverless"
	"github.com/elasticflow/elasticflow/internal/sim"
	"github.com/elasticflow/elasticflow/internal/throughput"
	"github.com/elasticflow/elasticflow/internal/topology"
	"github.com/elasticflow/elasticflow/internal/trace"
)

// This file is the public facade of the library: the stable entry points a
// downstream user imports, re-exported from the internal packages that
// implement them. The README's quickstart and the examples use exactly this
// surface.

// Core scheduling types.
type (
	// Job is a training job as the scheduler sees it.
	Job = job.Job
	// Scheduler is the policy contract shared by ElasticFlow and every
	// baseline.
	Scheduler = sched.Scheduler
	// Decision is the outcome of one scheduling event.
	Decision = sched.Decision
	// SchedulerOptions configures the ElasticFlow scheduler (§4).
	SchedulerOptions = core.Options
	// Curve is a job's throughput scaling curve.
	Curve = throughput.Curve
)

// Job classes (§4.4).
const (
	SLO          = job.SLO
	BestEffort   = job.BestEffort
	SoftDeadline = job.SoftDeadline
)

// NewScheduler creates the ElasticFlow scheduler: admission control on
// Minimum Satisfactory Share (Algorithm 1) plus greedy elastic resource
// allocation by diminishing returns (Algorithm 2).
func NewScheduler(opts SchedulerOptions) *core.ElasticFlow { return core.New(opts) }

// NewDefaultScheduler is NewScheduler with the paper's defaults (60-second
// planning slots, power-of-two buddy-compatible allocations).
func NewDefaultScheduler() *core.ElasticFlow { return core.NewDefault() }

// SchedulerByName constructs any scheduler in the repository by its
// evaluation name: "elasticflow" (or "ef"), the §6.1 baselines "edf",
// "gandiva", "tiresias", "themis", "chronus", "pollux", and the §6.4
// ablation variants "edf+ac" and "edf+es".
func SchedulerByName(name string) (Scheduler, error) {
	switch name {
	case "elasticflow", "ef":
		return core.NewDefault(), nil
	case "edf":
		return baselines.EDF{}, nil
	case "gandiva":
		return baselines.Gandiva{}, nil
	case "tiresias":
		return baselines.Tiresias{}, nil
	case "themis":
		return baselines.Themis{}, nil
	case "chronus":
		return baselines.Chronus{}, nil
	case "pollux":
		return baselines.Pollux{}, nil
	case "edf+ac":
		return baselines.EDFAdmission{}, nil
	case "edf+es":
		return baselines.EDFElastic{}, nil
	default:
		return nil, fmt.Errorf("elasticflow: unknown scheduler %q", name)
	}
}

// SchedulerNames lists the names SchedulerByName accepts, in the paper's
// presentation order.
func SchedulerNames() []string {
	return []string{"elasticflow", "edf", "gandiva", "tiresias", "themis", "chronus", "pollux", "edf+ac", "edf+es"}
}

// Serverless platform (§3.1).
type (
	// Platform is the running serverless service.
	Platform = serverless.Platform
	// PlatformOptions configures a platform.
	PlatformOptions = serverless.Options
	// SubmitRequest is the serverless training function a developer
	// submits: model, hyperparameters, termination condition, deadline —
	// never a GPU count.
	SubmitRequest = serverless.SubmitRequest
	// JobStatus is the externally visible job state.
	JobStatus = serverless.JobStatus
	// Client is the Go client for the HTTP control plane.
	Client = serverless.Client
)

// NewPlatform creates a serverless platform over a virtual cluster.
func NewPlatform(opts PlatformOptions) (*Platform, error) { return serverless.NewPlatform(opts) }

// NewHandler returns the platform's HTTP/JSON control plane.
func NewHandler(p *Platform) http.Handler { return serverless.Handler(p) }

// NewClient creates a client for a platform's HTTP control plane.
func NewClient(baseURL string) *Client { return serverless.NewClient(baseURL) }

// Cluster topology (§4.3).
type (
	// Topology describes the physical cluster layout.
	Topology = topology.Config
	// Cluster tracks buddy allocation over a topology.
	Cluster = topology.Cluster
)

// NewCluster creates a buddy-allocated cluster.
func NewCluster(cfg Topology) (*Cluster, error) { return topology.New(cfg) }

// Performance modeling (§5, Fig. 2).
type (
	// Hardware holds the per-GPU and interconnect constants.
	Hardware = model.Hardware
	// ModelSpec describes a Table 1 DNN model.
	ModelSpec = model.Spec
	// Estimator computes iteration times from the analytic model.
	Estimator = throughput.Estimator
	// Profiler measures scaling curves by pre-running jobs (§5).
	Profiler = throughput.Profiler
)

// DefaultHardware returns the calibrated A100-testbed constants.
func DefaultHardware() Hardware { return model.DefaultA100() }

// ModelCatalog returns the Table 1 model pool.
func ModelCatalog() []ModelSpec { return model.Catalog() }

// NewEstimator creates a throughput estimator over the given hardware.
func NewEstimator(hw Hardware) Estimator { return throughput.NewEstimator(hw) }

// NewCurveFromPoints builds a scaling curve from worker-count → throughput
// points, e.g. measured externally rather than by the profiler.
func NewCurveFromPoints(points map[int]float64) (Curve, error) { return throughput.NewCurve(points) }

// NewProfiler creates a curve profiler for clusters with perServer GPUs per
// server and jobs of at most maxWorkers workers.
func NewProfiler(est Estimator, perServer, maxWorkers int) *Profiler {
	return throughput.NewProfiler(est, perServer, maxWorkers)
}

// Workloads (§6.1).
type (
	// Trace is a replayable workload.
	Trace = trace.Trace
	// TraceConfig controls synthetic workload generation.
	TraceConfig = trace.Config
)

// GenerateTrace synthesizes a workload with the §6.1 recipe.
func GenerateTrace(cfg TraceConfig) Trace { return trace.Generate(cfg) }

// LoadTrace reads a trace saved by Trace.Save.
func LoadTrace(path string) (Trace, error) { return trace.Load(path) }

// Simulation (§6.1).
type (
	// SimConfig configures a simulation run.
	SimConfig = sim.Config
	// SimResult aggregates a run's metrics.
	SimResult = sim.Result
	// NodeFailure injects a server outage (§4.4).
	NodeFailure = sim.Failure
)

// Simulate replays jobs under the configured scheduler and returns the
// collected metrics.
func Simulate(cfg SimConfig, jobs []*Job, traceName string) (SimResult, error) {
	return sim.Run(cfg, jobs, traceName)
}

// Operator policies (§4.4).
type (
	// AdmissionPolicy is a composable quota/pricing policy.
	AdmissionPolicy = policy.Policy
	// Pricing prices jobs by size and deadline tightness.
	Pricing = policy.Pricing
)

// NewUserQuota caps per-user submissions within a sliding window.
func NewUserQuota(maxJobs int, windowSec float64) *policy.UserQuota {
	return policy.NewUserQuota(maxJobs, windowSec)
}

// NewBudget creates a priced per-user balance ledger.
func NewBudget(p Pricing) *policy.Budget { return policy.NewBudget(p) }

// ChainPolicies combines policies into a SchedulerOptions.Quota function.
func ChainPolicies(policies ...AdmissionPolicy) func(*Job) bool {
	return policy.Chain(policies...)
}
