# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test vet lint race fuzz-smoke obs-check ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzers (cmd/eflint): determinism in the
# simulator, `guarded by` mutex annotations, float equality, and discarded
# errors. Suppress a finding with `//eflint:ignore <analyzer> <reason>` on
# the same or preceding line; see DESIGN.md for conventions.
lint:
	$(GO) run ./cmd/eflint ./...

race:
	$(GO) test -race ./...

# fuzz-smoke gives each fuzz target a short budget — enough to replay the
# corpus and shake out shallow regressions without stalling CI.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzFill -fuzztime=10s ./internal/plan/
	$(GO) test -run=^$$ -fuzz=FuzzAdmissionControl -fuzztime=10s ./internal/core/

# obs-check exercises the observability core under the race detector (the
# bus and registry are the only pieces shared across goroutines by design)
# and lints it with the repo's analyzers.
obs-check:
	$(GO) test -race ./internal/obs/
	$(GO) run ./cmd/eflint ./internal/obs/

ci: build vet lint race fuzz-smoke obs-check
