# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test vet lint race fuzz-smoke obs-check faults-check ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzers (cmd/eflint): determinism in the
# simulator, `guarded by` mutex annotations, float equality, and discarded
# errors. Suppress a finding with `//eflint:ignore <analyzer> <reason>` on
# the same or preceding line; see DESIGN.md for conventions.
lint:
	$(GO) run ./cmd/eflint ./...

race:
	$(GO) test -race ./...

# fuzz-smoke gives each fuzz target a short budget — enough to replay the
# corpus and shake out shallow regressions without stalling CI.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzFill -fuzztime=10s ./internal/plan/
	$(GO) test -run=^$$ -fuzz=FuzzAdmissionControl -fuzztime=10s ./internal/core/

# obs-check exercises the observability core under the race detector (the
# bus and registry are the only pieces shared across goroutines by design)
# and lints it with the repo's analyzers.
obs-check:
	$(GO) test -race ./internal/obs/
	$(GO) run ./cmd/eflint ./internal/obs/

# faults-check exercises the fault-tolerant control plane under the race
# detector: the deterministic injector, the hardened RPC controller, and the
# chaos end-to-end (seeded agent crash mid-training → heartbeat detection →
# checkpoint-mirrored recovery, fixed seed 42 in chaos_test.go), then lints
# those packages with the repo's analyzers.
faults-check:
	$(GO) test -race ./internal/faults/ ./internal/agent/ ./internal/cluster/
	$(GO) run ./cmd/eflint ./internal/faults/ ./internal/agent/ ./internal/cluster/

ci: build vet lint race fuzz-smoke obs-check faults-check
