# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; `make ci-sync-check` (run as part of lint) verifies the two
# mechanically — see internal/cisync.

GO ?= go

# The wall-time-gated benchmarks CI compares between the PR base and head.
BENCH_GATE = BenchmarkFig6aTestbedSmall|BenchmarkFig7aAllocationTimeline

.PHONY: all build test vet lint race fuzz-smoke obs-check faults-check store-check trace-check transfer-check sim-check front-check ci ci-sync-check bench bench-base

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repo's own analyzers (cmd/eflint): the per-package passes
# (determinism, `guarded by` mutex annotations, float equality, discarded
# errors) and the whole-program passes (record-then-apply journaling,
# interprocedural lock discipline, the ef_* metric catalog) — see DESIGN.md
# §12. Suppress a finding with `//eflint:ignore <analyzer> <reason>` on the
# same or preceding line. The second invocation exercises the machine
# interface (-json) that editor and bot integrations consume. nilness is a
# gated extra: scripts/nilness.sh runs the x/tools analyzer when the
# environment provides it and skips cleanly offline.
lint: ci-sync-check
	$(GO) run ./cmd/eflint ./...
	$(GO) run ./cmd/eflint -json ./internal/analysis/...
	./scripts/nilness.sh

# ci-sync-check fails when the `ci` target here and the mirror jobs in
# .github/workflows/ci.yml run different command sets.
ci-sync-check:
	$(GO) test ./internal/cisync/

race:
	$(GO) test -race ./...

# fuzz-smoke gives each fuzz target a short budget — enough to replay the
# corpus and shake out shallow regressions without stalling CI. The nightly
# workflow runs the same targets at -fuzztime=5m.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzFill -fuzztime=10s ./internal/plan/
	$(GO) test -run=^$$ -fuzz=FuzzAdmissionControl -fuzztime=10s ./internal/core/
	$(GO) test -run=^$$ -fuzz=FuzzJournalRoundTrip -fuzztime=10s ./internal/store/
	$(GO) test -run=^$$ -fuzz=FuzzCheckpointTransfer -fuzztime=10s ./internal/transfer/
	$(GO) test -run=^$$ -fuzz=FuzzParallelSimEquivalence -fuzztime=10s ./internal/sim/

# obs-check exercises the observability core under the race detector (the
# bus and registry are the only pieces shared across goroutines by design)
# and lints it with the repo's analyzers.
obs-check:
	$(GO) test -race ./internal/obs/
	$(GO) run ./cmd/eflint ./internal/obs/

# faults-check exercises the fault-tolerant control plane under the race
# detector: the deterministic injector, the hardened RPC controller, and the
# chaos end-to-end (seeded agent crash mid-training → heartbeat detection →
# checkpoint-mirrored recovery, fixed seed 42 in chaos_test.go), then lints
# those packages with the repo's analyzers.
faults-check:
	$(GO) test -race ./internal/faults/ ./internal/agent/ ./internal/cluster/
	$(GO) run ./cmd/eflint ./internal/faults/ ./internal/agent/ ./internal/cluster/

# store-check exercises the durable control plane (DESIGN.md §11) under the
# race detector: the journal + snapshot store itself, the serverless
# record-then-apply path with its crash-restart equality test, and the
# efserver SIGKILL/restart end-to-end, then lints those packages with the
# repo's analyzers.
store-check:
	$(GO) test -race ./internal/store/ ./internal/serverless/ ./cmd/efserver/
	$(GO) run ./cmd/eflint ./internal/store/ ./internal/serverless/ ./cmd/efserver/

# trace-check exercises the causal tracing stack: the tracer and Chrome
# trace-event encoder under the race detector, the byte-identical
# golden-trail tests in the simulator, and an end-to-end efsim trace export
# (the same artifact the Perfetto quickstart in README loads).
trace-check:
	$(GO) test -race ./internal/obs/tracing/ ./internal/sim/
	$(GO) run ./cmd/efsim -seed 7 -jobs 40 -trace-out trace.json

# transfer-check exercises the checkpoint data plane (DESIGN.md §14) under
# the race detector: chunk framing, CRC verification and resume logic in
# internal/transfer, plus the end-to-end fetch/push/migrate and torn-mirror
# suites that ride it in internal/agent and internal/cluster, then lints the
# data-plane package with the repo's analyzers.
transfer-check:
	$(GO) test -race ./internal/transfer/
	$(GO) test -race -run 'Transfer|Staged|Chunk' ./internal/agent/ ./internal/cluster/
	$(GO) run ./cmd/eflint ./internal/transfer/

# sim-check proves the sharded parallel engine (DESIGN.md §15) is
# byte-identical to the serial loop under the race detector — the full oracle
# suite: worker-sweep and shard-count equivalence, GOMAXPROCS=1 progress, the
# golden determinism/span trails, and the shard-aware MaxSimSec abort — then
# smokes the million-job pipeline end-to-end at reduced scale: the scale
# experiment replays a seeded prefix of the Philly-scale trace at workers
# 1/2/4/8 and cross-checks the DSR across worker counts.
sim-check:
	$(GO) test -race -run 'Parallel|MaxSimSec|Determinism' ./internal/sim/
	$(GO) run ./cmd/efbench -exp scale -quick

# front-check exercises the multi-tenant front door (DESIGN.md §16) under
# the race detector: tenant routing, rate limits, GPU quotas, batched
# verdicts, the weighted spare-GPU rebalancer and per-shard crash-restart
# replay in internal/frontdoor; the batched submission path (one journal
# record and one plan-cache fold per batch, replay byte-identical at every
# crash prefix) in internal/serverless plus the efserver SIGKILL/restart
# end-to-end; then lints the package and smokes the open-loop load
# generator that the 100k-submissions/min floor gates in CI.
front-check:
	$(GO) test -race ./internal/frontdoor/
	$(GO) test -race -run 'Batch|Crash' ./internal/serverless/ ./cmd/efserver/
	$(GO) run ./cmd/eflint ./internal/frontdoor/
	$(GO) run ./cmd/efbench -exp frontdoor -quick

ci: build vet lint race fuzz-smoke obs-check faults-check store-check trace-check transfer-check sim-check front-check

# bench runs the gated benchmarks and, when a baseline exists, applies the
# same regression gate CI does. Capture the baseline on the base commit with
# `make bench-base`, switch to your change, then `make bench`.
bench:
	$(GO) test -run=^$$ -bench '$(BENCH_GATE)' -benchtime=1x -count=6 . | tee bench-head.txt
	@if [ -f bench-base.txt ]; then \
		$(GO) run ./cmd/benchgate -base bench-base.txt -head bench-head.txt; \
	else \
		echo "bench: no bench-base.txt — run 'make bench-base' on the base commit to enable the gate"; \
	fi

bench-base:
	$(GO) test -run=^$$ -bench '$(BENCH_GATE)' -benchtime=1x -count=6 . | tee bench-base.txt
