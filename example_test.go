package elasticflow_test

import (
	"fmt"
	"math"
	"time"

	elasticflow "github.com/elasticflow/elasticflow"
	"github.com/elasticflow/elasticflow/internal/topology"
)

// Example_admissionControl shows the paper's Fig. 3 motivating example on
// the public API: two jobs with a concave scaling curve both fit on two
// workers, a third is rejected because its deadline cannot be guaranteed.
func Example_admissionControl() {
	sched := elasticflow.NewScheduler(elasticflow.SchedulerOptions{
		SlotSec:        1,
		PowerOfTwo:     true,
		SafetyRescales: -1,
	})
	curve, _ := elasticflow.NewCurveFromPoints(map[int]float64{1: 1, 2: 1.5})
	mk := func(id string, deadline float64) *elasticflow.Job {
		return &elasticflow.Job{
			ID: id, GlobalBatch: 8, TotalIters: 3, Deadline: deadline,
			Class: elasticflow.SLO, Curve: curve, MinGPUs: 1, MaxGPUs: 2,
		}
	}
	a, b, c := mk("A", 3), mk("B", 3.5), mk("C", 3)

	fmt.Println("admit A:", sched.Admit(0, a, nil, 2))
	fmt.Println("admit B:", sched.Admit(0, b, []*elasticflow.Job{a}, 2))
	fmt.Println("admit C:", sched.Admit(0, c, []*elasticflow.Job{a, b}, 2))

	dec := sched.Schedule(0, []*elasticflow.Job{a, b}, 2)
	fmt.Printf("allocation: A=%d B=%d\n", dec.Alloc["A"], dec.Alloc["B"])
	// Output:
	// admit A: true
	// admit B: true
	// admit C: false
	// allocation: A=1 B=1
}

// Example_serverlessPlatform submits a training function the serverless way
// — model, hyperparameters, iterations and a deadline, never a GPU count —
// and reads back the platform's decisions.
func Example_serverlessPlatform() {
	clock := time.Unix(0, 0)
	platform, err := elasticflow.NewPlatform(elasticflow.PlatformOptions{
		Topology: topology.Config{Servers: 2, GPUsPerServer: 8},
		Clock:    func() time.Time { return clock },
	})
	if err != nil {
		panic(err)
	}
	st, err := platform.Submit(elasticflow.SubmitRequest{
		Model:           "resnet50",
		GlobalBatch:     128,
		Iterations:      50_000,
		DeadlineSeconds: 7200,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("state:", st.State)
	fmt.Println("gpus × local =", st.GPUs*st.LocalBatch)
	// Output:
	// state: running
	// gpus × local = 128
}

// Example_minimumSatisfactoryShare computes the §4.1 example: under
// contention, job C's cheapest deadline-meeting plan is 1 GPU now and 4 in
// the next slot.
func Example_minimumSatisfactoryShare() {
	sched := elasticflow.NewScheduler(elasticflow.SchedulerOptions{
		SlotSec: 1, PowerOfTwo: true, SafetyRescales: -1,
	})
	curve, _ := elasticflow.NewCurveFromPoints(map[int]float64{1: 1, 2: 1.5, 4: 2})
	mk := func(id string, iters, deadline float64, minGPUs int) *elasticflow.Job {
		return &elasticflow.Job{
			ID: id, GlobalBatch: 8, TotalIters: iters, Deadline: deadline,
			Class: elasticflow.SLO, Curve: curve, MinGPUs: minGPUs, MaxGPUs: 4,
		}
	}
	// A and B occupy 3 of the 4 GPUs during the first slot.
	a := mk("A", 1, 1, 1)
	b := mk("B", 1.5, 1, 2)
	c := mk("C", 3, 2, 1)
	mss := sched.MinimumSatisfactoryShare(0, []*elasticflow.Job{a, b, c}, 4)
	fmt.Println("C's plan:", mss["C"].Levels)
	fmt.Println("C's GPU time:", mss["C"].GPUTime)
	// Output:
	// C's plan: [1 4]
	// C's GPU time: 5
}

// Example_bestEffort mixes an SLO job with a best-effort job: the guarantee
// is reserved first, leftovers accelerate the best-effort work (§4.4).
func Example_bestEffort() {
	sched := elasticflow.NewDefaultScheduler()
	curve, _ := elasticflow.NewCurveFromPoints(map[int]float64{1: 1, 2: 1.8, 4: 3})
	slo := &elasticflow.Job{
		ID: "slo", GlobalBatch: 8, TotalIters: 7200, Deadline: 7200,
		Class: elasticflow.SLO, Curve: curve, MinGPUs: 1, MaxGPUs: 4,
	}
	be := &elasticflow.Job{
		ID: "be", GlobalBatch: 8, TotalIters: 1e6, Deadline: math.Inf(1),
		Class: elasticflow.BestEffort, Curve: curve, MinGPUs: 1, MaxGPUs: 4,
	}
	dec := sched.Schedule(0, []*elasticflow.Job{slo, be}, 4)
	fmt.Println("slo gets:", dec.Alloc["slo"] >= 1)
	fmt.Println("best-effort gets leftovers:", dec.Alloc["be"] >= 1)
	fmt.Println("within capacity:", dec.Alloc["slo"]+dec.Alloc["be"] <= 4)
	// Output:
	// slo gets: true
	// best-effort gets leftovers: true
	// within capacity: true
}
